"""Unit tests for the dynamic graph substrate."""

import pytest

from repro.graph import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_from_edges(self):
        g = Graph([(1, 2), (2, 3)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_from_vertices_and_edges(self):
        g = Graph(edges=[(1, 2)], vertices=[9])
        assert 9 in g
        assert g.degree(9) == 0


class TestMutation:
    def test_add_vertex_idempotent(self):
        g = Graph()
        assert g.add_vertex("a") is True
        assert g.add_vertex("a") is False
        assert g.num_vertices == 1

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        assert g.add_edge(1, 2) is True
        assert 1 in g and 2 in g

    def test_add_edge_duplicate(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.add_edge(1, 2) is False
        assert g.add_edge(2, 1) is False  # undirected
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_remove_edge(self):
        g = Graph([(1, 2)])
        assert g.remove_edge(2, 1) is True
        assert g.num_edges == 0
        assert 1 in g and 2 in g  # endpoints stay

    def test_remove_missing_edge(self):
        g = Graph([(1, 2)])
        assert g.remove_edge(1, 3) is False
        assert g.remove_edge(5, 6) is False

    def test_remove_vertex_detaches_edges(self):
        g = Graph([(1, 2), (1, 3), (2, 3)])
        assert g.remove_vertex(1) is True
        assert g.num_edges == 1
        assert g.has_edge(2, 3)
        assert not g.has_edge(1, 2)

    def test_remove_missing_vertex(self):
        g = Graph()
        assert g.remove_vertex("ghost") is False

    def test_mutation_sequence_keeps_invariants(self):
        g = Graph()
        for i in range(20):
            g.add_edge(i, (i + 1) % 20)
        for i in range(0, 20, 3):
            g.remove_vertex(i)
        g.validate()


class TestQueries:
    def test_neighbors(self, triangle):
        assert triangle.neighbors(0) == {1, 2}

    def test_neighbors_missing_raises(self):
        with pytest.raises(KeyError):
            Graph().neighbors("nope")

    def test_degree(self, two_cliques):
        assert two_cliques.degree(0) == 3
        assert two_cliques.degree(3) == 4  # clique + bridge

    def test_edges_reported_once(self, triangle):
        assert sorted(triangle.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_len_and_iter(self, triangle):
        assert len(triangle) == 3
        assert sorted(triangle) == [0, 1, 2]

    def test_isolated_vertices(self):
        g = Graph(edges=[(1, 2)], vertices=["lonely"])
        assert list(g.isolated_vertices()) == ["lonely"]

    def test_average_degree(self, triangle):
        assert triangle.average_degree() == 2.0

    def test_average_degree_empty(self):
        assert Graph().average_degree() == 0.0

    def test_degree_histogram(self, path_graph):
        hist = path_graph.degree_histogram()
        assert hist == {1: 2, 2: 4}


class TestDerived:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_edge(0, 1)
        assert triangle.has_edge(0, 1)
        assert not clone.has_edge(0, 1)

    def test_subgraph(self, two_cliques):
        sub = two_cliques.subgraph(range(0, 4))
        assert sub.num_vertices == 4
        assert sub.num_edges == 6  # the 4-clique, bridge excluded

    def test_subgraph_ignores_missing(self, triangle):
        sub = triangle.subgraph([0, 1, 99])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1

    def test_connected_components(self):
        g = Graph([(1, 2), (2, 3), (10, 11)])
        g.add_vertex(42)
        components = sorted(g.connected_components(), key=len, reverse=True)
        assert {1, 2, 3} in components
        assert {10, 11} in components
        assert {42} in components

    def test_giant_component_fraction(self):
        g = Graph([(1, 2), (2, 3), (10, 11)])
        assert g.giant_component_fraction() == pytest.approx(3 / 5)

    def test_giant_component_empty(self):
        assert Graph().giant_component_fraction() == 0.0

    def test_validate_detects_drift(self, triangle):
        triangle._num_edges += 1  # simulate corruption
        with pytest.raises(AssertionError):
            triangle.validate()

    def test_repr(self, triangle):
        assert "3" in repr(triangle)


class TestCanonicalOrder:
    """Regression tests for the DET001 fixes (reprolint).

    ``{1, 8, 16}`` iterates as ``[16, 8, 1]`` on CPython — 8 and 16
    collide in the hash table, so set order disagrees with both sorted
    and insertion order.  Before the fixes, ``subgraph`` and
    ``connected_components`` leaked that order into their results.
    """

    def test_subgraph_preserves_caller_vertex_order(self):
        g = Graph([(1, 8), (8, 16)])
        sub = g.subgraph([1, 8, 16])
        assert list(sub.vertices()) == [1, 8, 16]
        reversed_sub = g.subgraph([16, 8, 1])
        assert list(reversed_sub.vertices()) == [16, 8, 1]

    def test_subgraph_deduplicates_without_reordering(self):
        g = Graph([(1, 8), (8, 16)])
        sub = g.subgraph([16, 1, 16, 8, 1])
        assert list(sub.vertices()) == [16, 1, 8]
        assert sub.num_edges == 2

    def test_connected_components_follow_insertion_order(self):
        g = Graph()
        for v in (1, 8, 16):
            g.add_vertex(v)
        assert g.connected_components() == [{1}, {8}, {16}]
