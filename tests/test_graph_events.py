"""Unit tests for mutation events and their inverses."""

import pytest

from repro.graph import (
    AddEdge,
    AddVertex,
    EventKind,
    Graph,
    RemoveEdge,
    RemoveVertex,
    apply_event,
    apply_events,
    invert_event,
)


class TestApply:
    def test_add_vertex(self):
        g = Graph()
        assert apply_event(g, AddVertex("a")) is True
        assert apply_event(g, AddVertex("a")) is False

    def test_add_edge(self):
        g = Graph()
        assert apply_event(g, AddEdge(1, 2)) is True
        assert g.has_edge(1, 2)

    def test_remove_vertex(self):
        g = Graph([(1, 2)])
        assert apply_event(g, RemoveVertex(1)) is True
        assert 1 not in g

    def test_remove_edge(self):
        g = Graph([(1, 2)])
        assert apply_event(g, RemoveEdge(1, 2)) is True
        assert g.num_edges == 0

    def test_apply_events_counts_changes(self):
        g = Graph()
        events = [AddEdge(1, 2), AddEdge(1, 2), AddVertex(1), AddVertex(3)]
        assert apply_events(g, events) == 2

    def test_unknown_event_rejected(self):
        with pytest.raises(TypeError):
            apply_event(Graph(), "not an event")

    def test_kinds(self):
        assert AddVertex(1).kind is EventKind.ADD_VERTEX
        assert RemoveVertex(1).kind is EventKind.REMOVE_VERTEX
        assert AddEdge(1, 2).kind is EventKind.ADD_EDGE
        assert RemoveEdge(1, 2).kind is EventKind.REMOVE_EDGE


class TestInvert:
    def _roundtrip(self, graph, event):
        """Apply event then its inverse; graph must be unchanged."""
        before_vertices = set(graph.vertices())
        before_edges = set(map(frozenset, graph.edges()))
        inverse = invert_event(event, graph)
        apply_event(graph, event)
        for inv in inverse:
            apply_event(graph, inv)
        assert set(graph.vertices()) == before_vertices
        assert set(map(frozenset, graph.edges())) == before_edges
        graph.validate()

    def test_add_vertex_roundtrip(self):
        self._roundtrip(Graph([(1, 2)]), AddVertex(99))

    def test_add_edge_roundtrip_existing_endpoints(self):
        self._roundtrip(Graph(vertices=[5, 6]), AddEdge(5, 6))

    def test_add_edge_roundtrip_new_endpoints(self):
        # add_edge implicitly creates vertices; the inverse must remove them.
        self._roundtrip(Graph([(1, 2)]), AddEdge("new1", "new2"))

    def test_remove_vertex_roundtrip_restores_edges(self):
        g = Graph([(1, 2), (1, 3), (2, 3)])
        self._roundtrip(g, RemoveVertex(1))

    def test_remove_edge_roundtrip(self):
        self._roundtrip(Graph([(1, 2)]), RemoveEdge(1, 2))

    def test_noop_events_invert_to_empty(self):
        g = Graph([(1, 2)])
        assert invert_event(AddVertex(1), g) == []
        assert invert_event(AddEdge(1, 2), g) == []
        assert invert_event(RemoveVertex(42), g) == []
        assert invert_event(RemoveEdge(5, 6), g) == []

    def test_self_loop_invert_rejected(self):
        with pytest.raises(ValueError):
            invert_event(AddEdge(1, 1), Graph())

    def test_events_are_hashable_records(self):
        assert AddEdge(1, 2) == AddEdge(1, 2)
        assert len({AddVertex(1), AddVertex(1), AddVertex(2)}) == 2
