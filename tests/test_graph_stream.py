"""Unit tests for timestamped event streams and batching."""

import pytest

from repro.graph import (
    AddEdge,
    AddVertex,
    EventStream,
    Graph,
    TimedEvent,
    batch_by_count,
    batch_by_time,
)


def make_stream(times):
    s = EventStream()
    for i, t in enumerate(times):
        s.push(t, AddEdge(i, i + 1))
    return s


class TestEventStream:
    def test_push_keeps_order(self):
        s = make_stream([3.0, 1.0, 2.0])
        assert [te.time for te in s] == [1.0, 2.0, 3.0]

    def test_extend_sorts(self):
        s = EventStream()
        s.extend([TimedEvent(2.0, AddVertex("b")), TimedEvent(1.0, AddVertex("a"))])
        assert [te.time for te in s] == [1.0, 2.0]

    def test_start_end_times(self):
        s = make_stream([5.0, 1.0])
        assert s.start_time == 1.0
        assert s.end_time == 5.0

    def test_empty_stream(self):
        s = EventStream()
        assert len(s) == 0
        assert s.start_time is None
        assert s.end_time is None

    def test_window_half_open(self):
        s = make_stream([0.0, 1.0, 2.0, 3.0])
        window = s.window(1.0, 3.0)
        assert [te.time for te in window] == [1.0, 2.0]

    def test_events_between(self):
        s = make_stream([0.0, 1.0])
        events = s.events_between(0.0, 10.0)
        assert events == [AddEdge(0, 1), AddEdge(1, 2)]

    def test_replay_into(self):
        s = EventStream()
        s.push(0.0, AddEdge("a", "b"))
        s.push(1.0, AddEdge("b", "c"))
        g = Graph()
        assert s.replay_into(g) == 2
        assert g.num_edges == 2

    def test_replay_until(self):
        s = EventStream()
        s.push(0.0, AddEdge("a", "b"))
        s.push(5.0, AddEdge("b", "c"))
        g = Graph()
        assert s.replay_into(g, until=5.0) == 1
        assert g.num_edges == 1

    def test_merged_with(self):
        a = make_stream([0.0, 2.0])
        b = make_stream([1.0])
        merged = a.merged_with(b)
        assert [te.time for te in merged] == [0.0, 1.0, 2.0]
        assert len(a) == 2  # originals untouched

    def test_indexing(self):
        s = make_stream([1.0, 0.0])
        assert s[0].time == 0.0


class TestBatching:
    def test_batch_by_time_covers_span(self):
        s = make_stream([0.0, 0.5, 1.5, 3.2])
        batches = list(batch_by_time(s, window=1.0))
        starts = [b[0] for b in batches]
        assert starts == [0.0, 1.0, 2.0, 3.0]
        total = sum(len(b[1]) for b in batches)
        assert total == 4

    def test_batch_by_time_yields_empty_windows(self):
        s = make_stream([0.0, 3.0])
        batches = list(batch_by_time(s, window=1.0))
        # Window at t=1 and t=2 must exist and be empty (the system still
        # runs supersteps when the feed goes quiet).
        assert batches[1][1] == []
        assert batches[2][1] == []

    def test_batch_by_time_empty_stream(self):
        assert list(batch_by_time(EventStream(), window=1.0)) == []

    def test_batch_by_time_rejects_bad_window(self):
        with pytest.raises(ValueError):
            list(batch_by_time(make_stream([0.0]), window=0))

    def test_batch_by_count_sizes(self):
        s = make_stream([float(i) for i in range(7)])
        batches = list(batch_by_count(s, batch_size=3))
        assert [len(b) for b in batches] == [3, 3, 1]

    def test_batch_by_count_exact_multiple(self):
        s = make_stream([float(i) for i in range(6)])
        batches = list(batch_by_count(s, batch_size=3))
        assert [len(b) for b in batches] == [3, 3]

    def test_batch_by_count_rejects_bad_size(self):
        with pytest.raises(ValueError):
            list(batch_by_count(make_stream([0.0]), batch_size=0))
