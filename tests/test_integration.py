"""End-to-end integration tests across all layers.

These mirror the paper's evaluation flow in miniature: generator → initial
partitioning → adaptive convergence → metrics, and stream → Pregel system →
background repartitioner → application results.
"""

import pytest

from repro.analysis import CostModel
from repro.apps import CardiacFemSimulation, TunkRank
from repro.core import AdaptiveConfig, run_to_convergence
from repro.datasets import build_dataset
from repro.generators import (
    CdrStreamConfig,
    TweetStreamConfig,
    forest_fire_expansion,
    generate_cdr_stream,
    generate_tweet_stream,
    mesh_3d,
)
from repro.graph import Graph, batch_by_time
from repro.partitioning import balanced_capacities, make_partitioner
from repro.pregel import PregelConfig, PregelSystem


class TestAlgorithmicPipeline:
    """Fig. 4/5-style flow on scaled datasets."""

    @pytest.mark.parametrize("strategy", ["HSH", "RND", "MNN"])
    def test_iterative_improves_all_poor_starts_on_fem(self, strategy):
        graph = build_dataset("1e4", scale=0.1)
        k = 9
        caps = balanced_capacities(graph.num_vertices, k)
        state = make_partitioner(strategy, seed=0).partition(
            graph, k, list(caps)
        )
        initial = state.cut_ratio()
        run_to_convergence(
            graph, state, AdaptiveConfig(seed=0, quiet_window=10)
        )
        # the paper reports 0.2–0.4 improvement for poor starts on FEMs
        assert initial - state.cut_ratio() > 0.15

    def test_dgr_start_improves_little(self):
        graph = build_dataset("1e4", scale=0.1)
        k = 9
        caps = balanced_capacities(graph.num_vertices, k)
        state = make_partitioner("DGR").partition(graph, k, list(caps))
        initial = state.cut_ratio()
        run_to_convergence(graph, state, AdaptiveConfig(seed=0, quiet_window=10))
        improvement = initial - state.cut_ratio()
        assert improvement < 0.35  # already-decent start: small gain

    def test_metis_line_is_lower_bound_ballpark(self):
        graph = build_dataset("1e4", scale=0.1)
        k = 9
        metis = make_partitioner("METIS", seed=0).partition(graph, k)
        caps = balanced_capacities(graph.num_vertices, k)
        adaptive = make_partitioner("HSH").partition(graph, k, list(caps))
        run_to_convergence(
            graph, adaptive, AdaptiveConfig(seed=0, quiet_window=10)
        )
        assert metis.cut_ratio() <= adaptive.cut_ratio() + 0.05


class TestBiomedicalScenario:
    """Fig. 7 in miniature: hash re-arrangement, then a forest-fire peak."""

    def test_full_scenario_shapes(self):
        graph = mesh_3d(7)
        program = CardiacFemSimulation(stimulus_vertices={0})
        system = PregelSystem(
            graph,
            program,
            PregelConfig(num_workers=4, adaptive=True, seed=0, quiet_window=10),
        )
        model = CostModel()
        phase1 = system.run(50)
        cuts_start = phase1[0].cut_edges
        cuts_settled = phase1[-1].cut_edges
        assert cuts_settled < cuts_start
        # inject the 10% forest-fire peak
        events, _ = forest_fire_expansion(
            graph, int(0.1 * graph.num_vertices), seed=1
        )
        system.inject_events(events)
        phase2 = system.run(50)
        peak_cuts = phase2[0].cut_edges
        assert peak_cuts > cuts_settled  # the spike
        assert phase2[-1].cut_edges < peak_cuts  # absorbed
        # modelled time also spikes then decays
        times = model.times_of([r.traffic for r in phase2])
        assert times[-1] < max(times[:10])
        system.state.validate()


class TestTwitterScenario:
    """Fig. 8 in miniature: paired adaptive/static clusters on one stream."""

    def test_adaptive_beats_static_on_stream(self):
        stream = generate_tweet_stream(
            TweetStreamConfig(duration=1200.0, mean_rate=3.0, num_users=300, seed=0)
        )
        model = CostModel()
        steady_times = {}
        for adaptive in (True, False):
            system = PregelSystem(
                Graph(),
                TunkRank(),
                PregelConfig(num_workers=4, adaptive=adaptive, seed=0),
            )
            times = []
            for _, events in batch_by_time(stream, window=60.0):
                system.inject_events(events)
                report = system.run_superstep()
                times.append(model.time_of(report.traffic))
            # The paper measured after days of continuous running; let the
            # migration overhead amortise before comparing steady state.
            for report in system.run(60):
                times.append(model.time_of(report.traffic))
            steady_times[adaptive] = sum(times[-5:]) / 5
        assert steady_times[True] < steady_times[False]


class TestCdrScenario:
    """Fig. 9 in miniature: weekly clique batches over a churning graph."""

    def test_dynamic_partitioning_keeps_cuts_stable(self):
        stream, boundaries = generate_cdr_stream(
            CdrStreamConfig(initial_subscribers=300, num_weeks=3, seed=0)
        )
        system = PregelSystem(
            Graph(),
            TunkRank(),  # stand-in continuous load between batches
            PregelConfig(num_workers=4, adaptive=True, seed=0),
        )
        weekly_cuts = []
        previous = 0.0
        for boundary in boundaries[1:] + [stream.end_time + 1]:
            events = stream.events_between(previous, boundary)
            system.inject_events(events)
            reports = system.run(25)
            weekly_cuts.append(reports[-1].cut_ratio)
            previous = boundary
        # adaptive cuts stay in a stable band across weeks
        assert max(weekly_cuts) - min(weekly_cuts) < 0.3
        system.state.validate()


class TestCrossLayerConsistency:
    def test_runner_and_pregel_agree_on_final_quality(self):
        """The logical runner and the distributed system execute the same
        heuristic; starting from the same hash partitioning they must land
        at similar cut ratios on a mesh."""
        results = {}
        graph_a = mesh_3d(6)
        k = 4
        caps = balanced_capacities(graph_a.num_vertices, k)
        state = make_partitioner("HSH").partition(graph_a, k, list(caps))
        run_to_convergence(
            graph_a, state, AdaptiveConfig(seed=0, quiet_window=10)
        )
        results["runner"] = state.cut_ratio()

        graph_b = mesh_3d(6)
        system = PregelSystem(
            graph_b,
            TunkRank(),
            PregelConfig(num_workers=k, adaptive=True, seed=0, quiet_window=10),
        )
        for _ in range(200):
            system.run_superstep()
            if system.partitioning_converged:
                break
        results["pregel"] = system.state.cut_ratio()
        assert results["pregel"] == pytest.approx(results["runner"], abs=0.12)
