"""Tests for edge-list and partition/stream persistence."""

import math

import pytest

from repro.generators import mesh_3d, powerlaw_cluster_graph
from repro.graph import AddEdge, AddVertex, Graph, RemoveVertex
from repro.graph.stream import EventStream
from repro.io import (
    load_event_stream,
    load_partition,
    read_edgelist,
    save_event_stream,
    save_partition,
    write_edgelist,
)
from repro.partitioning import HashPartitioner, balanced_capacities


class TestEdgelist:
    def test_roundtrip_preserves_topology(self, tmp_path):
        graph = powerlaw_cluster_graph(120, m=2, seed=0)
        path = tmp_path / "graph.txt"
        write_edgelist(graph, path)
        loaded = read_edgelist(path)
        assert loaded.num_vertices == graph.num_vertices
        assert set(map(frozenset, loaded.edges())) == set(
            map(frozenset, graph.edges())
        )

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# SNAP header\n\n% chaco comment\n1 2\n2 3\n")
        graph = read_edgelist(path)
        assert graph.num_edges == 2

    def test_directed_duplicates_collapse(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1 2\n2 1\n")
        graph = read_edgelist(path)
        assert graph.num_edges == 1

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1 1\n1 2\n")
        graph = read_edgelist(path)
        assert graph.num_edges == 1

    def test_integer_promotion_all_or_nothing(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1 2\nalpha 2\n")
        graph = read_edgelist(path)
        # one non-int id keeps everything as strings
        assert "1" in graph and "alpha" in graph

    def test_pure_int_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("10 20\n")
        graph = read_edgelist(path)
        assert 10 in graph

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("justone\n")
        with pytest.raises(ValueError, match="expected two ids"):
            read_edgelist(path)

    def test_extra_columns_tolerated(self, tmp_path):
        # SNAP files sometimes carry timestamps/weights in column 3
        path = tmp_path / "g.txt"
        path.write_text("1 2 1354000000\n")
        graph = read_edgelist(path)
        assert graph.has_edge(1, 2)


class TestPartitionPersistence:
    def test_roundtrip(self, tmp_path):
        graph = mesh_3d(4)
        caps = balanced_capacities(graph.num_vertices, 3)
        state = HashPartitioner().partition(graph, 3, list(caps))
        path = tmp_path / "partition.jsonl"
        save_partition(state, path)
        loaded = load_partition(graph, path)
        assert dict(loaded.assignment_items()) == dict(state.assignment_items())
        assert loaded.cut_edges == state.cut_edges
        assert loaded.capacities == state.capacities

    def test_infinite_capacities_roundtrip(self, tmp_path):
        graph = Graph([(1, 2)])
        from repro.partitioning import PartitionState

        state = PartitionState(graph, 2)
        state.assign(1, 0)
        state.assign(2, 1)
        path = tmp_path / "p.jsonl"
        save_partition(state, path)
        loaded = load_partition(graph, path)
        assert loaded.capacities == [math.inf, math.inf]

    def test_vanished_vertices_skipped(self, tmp_path):
        graph = mesh_3d(3)
        caps = balanced_capacities(graph.num_vertices, 2)
        state = HashPartitioner().partition(graph, 2, list(caps))
        path = tmp_path / "p.jsonl"
        save_partition(state, path)
        graph.remove_vertex(0)  # churn between save and load
        loaded = load_partition(graph, path)
        assert 0 not in loaded
        assert len(loaded) == graph.num_vertices
        assert loaded.cut_edges == loaded.recompute_cut_edges()


class TestStreamPersistence:
    def test_roundtrip_all_event_kinds(self, tmp_path):
        from repro.graph import RemoveEdge

        stream = EventStream()
        stream.push(0.5, AddVertex("a"))
        stream.push(1.0, AddEdge("a", "b"))
        stream.push(2.0, RemoveEdge("a", "b"))
        stream.push(3.0, RemoveVertex("a"))
        path = tmp_path / "stream.jsonl"
        save_event_stream(stream, path)
        loaded = load_event_stream(path)
        assert [(te.time, te.event) for te in loaded] == [
            (te.time, te.event) for te in stream
        ]

    def test_unknown_kind_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('[1.0, "explode", []]\n')
        with pytest.raises(ValueError, match="unknown event kind"):
            load_event_stream(path)

    def test_replay_equivalence(self, tmp_path):
        # a saved+loaded stream must drive a graph to the same topology
        from repro.generators import TweetStreamConfig, generate_tweet_stream

        stream = generate_tweet_stream(
            TweetStreamConfig(duration=120.0, mean_rate=3.0, num_users=50, seed=1)
        )
        path = tmp_path / "tweets.jsonl"
        save_event_stream(stream, path)
        loaded = load_event_stream(path)
        g1, g2 = Graph(), Graph()
        stream.replay_into(g1)
        loaded.replay_into(g2)
        assert set(map(frozenset, g1.edges())) == set(map(frozenset, g2.edges()))
