"""Unit tests for the multilevel (METIS-like) partitioner."""

import pytest

from repro.generators import mesh_3d, powerlaw_cluster_graph
from repro.partitioning import HashPartitioner, MultilevelPartitioner
from repro.partitioning.multilevel.coarsen import coarsen_once, coarsen_to_size
from repro.partitioning.multilevel.initial import (
    greedy_bisection,
    pseudo_peripheral_vertex,
)
from repro.partitioning.multilevel.refine import fm_refine
from repro.partitioning.multilevel.weighted import WeightedGraph
from repro.utils import make_rng


def lift(graph):
    return WeightedGraph.from_graph(graph)


class TestWeightedGraph:
    def test_from_graph_weights(self, triangle):
        wg = lift(triangle)
        assert wg.num_vertices == 3
        assert wg.total_vertex_weight == 3
        assert all(w == 1 for _, __, w in wg.edges())

    def test_parallel_edges_accumulate(self):
        wg = WeightedGraph()
        wg.add_vertex("a")
        wg.add_vertex("b")
        wg.add_edge("a", "b", 2)
        wg.add_edge("a", "b", 3)
        assert wg.neighbors("a")["b"] == 5

    def test_self_edge_ignored(self):
        wg = WeightedGraph()
        wg.add_vertex("a")
        wg.add_edge("a", "a", 5)
        assert wg.weighted_degree("a") == 0

    def test_duplicate_vertex_rejected(self):
        wg = WeightedGraph()
        wg.add_vertex("a")
        with pytest.raises(ValueError):
            wg.add_vertex("a")

    def test_cut_weight(self, triangle):
        wg = lift(triangle)
        assignment = {0: 0, 1: 1, 2: 1}
        assert wg.cut_weight(assignment) == 2


class TestCoarsening:
    def test_preserves_total_vertex_weight(self, small_mesh):
        wg = lift(small_mesh)
        level = coarsen_once(wg, make_rng(0))
        assert level.coarse.total_vertex_weight == wg.total_vertex_weight

    def test_shrinks_vertex_count(self, small_mesh):
        wg = lift(small_mesh)
        level = coarsen_once(wg, make_rng(0))
        assert level.coarse.num_vertices < wg.num_vertices
        # heavy-edge matching roughly halves a mesh
        assert level.coarse.num_vertices <= 0.75 * wg.num_vertices

    def test_projection_covers_all_fine_vertices(self, small_mesh):
        wg = lift(small_mesh)
        level = coarsen_once(wg, make_rng(1))
        coarse_assignment = {v: 0 for v in level.coarse.vertices()}
        projected = level.project(coarse_assignment)
        assert set(projected) == set(wg.vertices())

    def test_cut_preserved_under_projection(self, small_mesh):
        # The coarse cut of an assignment equals the fine cut of its projection.
        wg = lift(small_mesh)
        level = coarsen_once(wg, make_rng(2))
        rng = make_rng(3)
        coarse_assignment = {
            v: rng.randrange(2) for v in level.coarse.vertices()
        }
        fine_assignment = level.project(coarse_assignment)
        assert wg.cut_weight(fine_assignment) == level.coarse.cut_weight(
            coarse_assignment
        )

    def test_coarsen_to_size(self, small_mesh):
        wg = lift(small_mesh)
        levels = coarsen_to_size(wg, 30, make_rng(0))
        assert levels
        assert levels[-1].coarse.num_vertices <= max(
            30, int(0.95 * levels[-1].fine.num_vertices)
        )


class TestInitialBisection:
    def test_pseudo_peripheral_has_max_eccentricity(self):
        # On a 5³ mesh the diameter is 3·(5−1)=12 and only corners reach it;
        # the repeated-BFS walk must land on such a peripheral vertex
        # (possibly the start itself when the start is already a corner).
        g = mesh_3d(5)
        wg = lift(g)
        start = (2 * 5 + 2) * 5 + 2  # the centre vertex
        far = pseudo_peripheral_vertex(wg, start)
        distances = {far: 0}
        frontier = [far]
        while frontier:
            nxt = []
            for v in frontier:
                for w in wg.neighbors(v):
                    if w not in distances:
                        distances[w] = distances[v] + 1
                        nxt.append(w)
            frontier = nxt
        assert max(distances.values()) == 12

    def test_bisection_is_total_and_near_target(self, small_mesh):
        wg = lift(small_mesh)
        assignment = greedy_bisection(
            wg, wg.total_vertex_weight / 2, make_rng(0)
        )
        assert set(assignment) == set(wg.vertices())
        weight0 = sum(
            wg.vertex_weight[v] for v, s in assignment.items() if s == 0
        )
        assert abs(weight0 - wg.total_vertex_weight / 2) < 0.2 * wg.total_vertex_weight

    def test_empty_graph(self):
        assert greedy_bisection(WeightedGraph(), 1, make_rng(0)) == {}

    def test_disconnected_graph_fully_assigned(self):
        wg = WeightedGraph()
        for v in range(6):
            wg.add_vertex(v)
        wg.add_edge(0, 1)
        wg.add_edge(2, 3)  # components: {0,1},{2,3},{4},{5}
        assignment = greedy_bisection(wg, 3, make_rng(0))
        assert set(assignment) == set(range(6))


class TestRefinement:
    def test_never_worsens_cut(self, small_mesh):
        wg = lift(small_mesh)
        rng = make_rng(5)
        assignment = {v: rng.randrange(2) for v in wg.vertices()}
        before = wg.cut_weight(assignment)
        after = fm_refine(wg, assignment, wg.total_vertex_weight / 2)
        assert after <= before
        assert after == wg.cut_weight(assignment)

    def test_substantial_improvement_from_random(self, small_mesh):
        wg = lift(small_mesh)
        rng = make_rng(6)
        assignment = {v: rng.randrange(2) for v in wg.vertices()}
        before = wg.cut_weight(assignment)
        after = fm_refine(wg, assignment, wg.total_vertex_weight / 2)
        assert after < 0.7 * before

    def test_balance_respected(self, small_mesh):
        wg = lift(small_mesh)
        rng = make_rng(7)
        assignment = {v: rng.randrange(2) for v in wg.vertices()}
        tolerance = 0.05
        fm_refine(
            wg, assignment, wg.total_vertex_weight / 2, tolerance=tolerance
        )
        weight0 = sum(
            wg.vertex_weight[v] for v, s in assignment.items() if s == 0
        )
        band = tolerance * wg.total_vertex_weight
        assert abs(weight0 - wg.total_vertex_weight / 2) <= band + 1


class TestKWay:
    @pytest.mark.parametrize("k", [2, 3, 5, 9])
    def test_produces_k_nonempty_partitions(self, small_mesh, k):
        state = MultilevelPartitioner(seed=0).partition(small_mesh, k)
        assert len(state) == small_mesh.num_vertices
        assert all(size > 0 for size in state.sizes)
        state.validate()

    def test_beats_hash_substantially_on_mesh(self):
        g = mesh_3d(8)
        hsh = HashPartitioner().partition(g, 9)
        metis = MultilevelPartitioner(seed=0).partition(g, 9)
        assert metis.cut_ratio() < 0.5 * hsh.cut_ratio()

    def test_reasonable_balance(self):
        g = mesh_3d(8)
        state = MultilevelPartitioner(seed=0).partition(g, 9)
        assert state.imbalance() < 1.35

    def test_deterministic(self, small_powerlaw):
        a = MultilevelPartitioner(seed=2).partition(small_powerlaw, 4)
        b = MultilevelPartitioner(seed=2).partition(small_powerlaw, 4)
        assert dict(a.assignment_items()) == dict(b.assignment_items())

    def test_works_on_powerlaw(self, small_powerlaw):
        state = MultilevelPartitioner(seed=0).partition(small_powerlaw, 4)
        assert len(state) == small_powerlaw.num_vertices
        hsh = HashPartitioner().partition(small_powerlaw, 4)
        assert state.cut_ratio() < hsh.cut_ratio()

    def test_single_partition(self, triangle):
        state = MultilevelPartitioner().partition(triangle, 1)
        assert state.sizes == [3]
        assert state.cut_edges == 0
