"""The observability layer: tracer, metrics registry, exporters, inertness.

Three contracts under test:

* **Unit behaviour** — span tuples, the disabled fast path, counter/gauge/
  histogram semantics, the :class:`~repro.obs.CounterGroup` mapping view,
  and both exporter formats.
* **Determinism** — a traced run must replay the *byte-identical* golden
  superstep timeline on every executor backend
  (``tests/golden/pregel-*.json``, the same fixtures
  ``test_cluster_golden.py`` pins for untraced runs).  Tracing is
  measurement, never semantics.
* **The merged timeline** — a socket run's single trace must interleave
  worker-side ``compute`` spans (per-shard lanes) with the coordinator's
  barrier spans and the wire lane's send/recv spans.

Plus the reset-at-start regression tests: a reused executor reports
per-session counter values instead of silently accumulating across runs.
"""

import atexit
import json
import os
from pathlib import Path

import pytest

from repro.cluster import (
    LocalWorkerPool,
    PipelinedExecutor,
    SocketExecutor,
)
from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    span_dict,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.obs.export import chrome_trace_events
from repro.obs.trace import _NULL_SCOPE
from repro.scenarios import get_scenario, play_scenario

GOLDEN_DIR = Path(__file__).parent / "golden"
EXECUTORS = [
    name.strip()
    for name in os.environ.get(
        "REPRO_CLUSTER_EXECUTORS", "inline,thread,pipelined,process,socket"
    ).split(",")
    if name.strip()
]

_POOL = None


def _socket_executor():
    global _POOL
    if _POOL is None:
        _POOL = LocalWorkerPool(2)
        atexit.register(_POOL.close)
    return SocketExecutor(_POOL.addresses)


def _resolve(executor):
    return _socket_executor() if executor == "socket" else executor


# ---------------------------------------------------------------------------
# Tracer


class TestTracer:
    def test_span_records_tuple(self):
        tracer = Tracer(lane="coordinator")
        with tracer.span("compute", superstep=3):
            pass
        assert len(tracer.spans) == 1
        name, lane, start, duration, args = tracer.spans[0]
        assert name == "compute"
        assert lane == "coordinator"
        assert start > 0
        assert duration >= 0
        assert args == {"superstep": 3}

    def test_nested_spans_record_inner_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s[0] for s in tracer.spans] == ["inner", "outer"]
        # the outer span's window contains the inner's
        inner, outer = tracer.spans
        assert outer[2] <= inner[2]
        assert outer[3] >= inner[3]

    def test_disabled_span_is_shared_noop_scope(self):
        tracer = Tracer(enabled=False)
        scope = tracer.span("compute", superstep=1)
        assert scope is _NULL_SCOPE
        assert scope is tracer.span("other")
        with scope:
            pass
        assert tracer.spans == []

    def test_disabled_record_absorb_are_noops(self):
        tracer = Tracer(enabled=False)
        tracer.record("x", 1.0, 0.5)
        tracer.absorb([("y", "shard-0", 1.0, 0.1, None)])
        assert tracer.spans == []

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_record_uses_default_lane_and_none_args(self):
        tracer = Tracer(lane="shard-2")
        tracer.record("compute", 10.0, 0.25)
        assert tracer.spans == [("compute", "shard-2", 10.0, 0.25, None)]

    def test_drain_returns_and_clears(self):
        tracer = Tracer(lane="shard-0")
        tracer.record("compute", 1.0, 0.1)
        spans = tracer.drain()
        assert len(spans) == 1
        assert tracer.spans == []
        other = Tracer()
        other.absorb(spans)
        assert other.spans == spans

    def test_lanes_orders_coordinator_then_shards_then_rest(self):
        tracer = Tracer()
        for lane in ("wire", "shard-10", "shard-2", "coordinator"):
            tracer.record("x", 1.0, 0.0, lane=lane)
        assert tracer.lanes() == ["coordinator", "shard-2", "shard-10", "wire"]

    def test_span_dict_drops_empty_args(self):
        assert span_dict(("a", "coordinator", 1.5, 0.25, None)) == {
            "name": "a", "lane": "coordinator", "start": 1.5, "dur": 0.25,
        }
        assert span_dict(("a", "wire", 1.5, 0.25, {"k": 1}))["args"] == {"k": 1}


# ---------------------------------------------------------------------------
# Metrics


class TestMetrics:
    def test_counter_preserves_int(self):
        counter = Counter("bytes")
        counter.add(4)
        counter.add(3)
        assert counter.value == 7
        assert isinstance(counter.value, int)
        counter.add(0.5)
        assert isinstance(counter.value, float)
        counter.reset()
        assert counter.value == 0
        assert isinstance(counter.value, int)

    def test_gauge_last_write_wins(self):
        gauge = Gauge("depth")
        gauge.set(3)
        gauge.set(9)
        assert gauge.value == 9
        gauge.reset()
        assert gauge.value == 0

    def test_histogram_summary(self):
        hist = Histogram("sizes")
        assert hist.mean == 0
        for value in (4, 1, 7):
            hist.observe(value)
        assert hist.summary() == {"count": 3, "total": 12, "min": 1, "max": 7}
        assert hist.mean == 4
        hist.reset()
        assert hist.summary() == {
            "count": 0, "total": 0, "min": None, "max": None,
        }

    def test_registry_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_counter_group_mapping_view(self):
        registry = MetricsRegistry()
        group = registry.group("executor.bytes_sent")
        assert len(group) == 0
        group.add("step", 10)
        group.add("init", 4)
        group.add("step", 5)
        # the dict-era call sites: set(view), view.values(), view["step"]
        assert set(group) == {"step", "init"}
        assert sorted(group.values()) == [4, 15]
        assert group["step"] == 15
        with pytest.raises(KeyError):
            group["snapshot"]
        # the view is live over the registry counter
        assert registry.counter("executor.bytes_sent.step").value == 15
        group.reset()
        assert len(group) == 0
        assert registry.counter("executor.bytes_sent.step").value == 0

    def test_snapshot_and_phase_seconds(self):
        registry = MetricsRegistry()
        registry.counter("phase.compute.seconds").add(1.5)
        registry.counter("phase.barrier.seconds").add(0.5)
        registry.counter("supersteps").add(12)
        registry.gauge("shards").set(4)
        registry.histogram("delta.bytes").observe(100)
        snap = registry.snapshot()
        assert snap["counters"]["supersteps"] == 12
        assert snap["gauges"]["shards"] == 4
        assert snap["histograms"]["delta.bytes"]["count"] == 1
        assert registry.phase_seconds() == {"compute": 1.5, "barrier": 0.5}
        # snapshot is JSON-able as-is
        json.dumps(snap)

    def test_render_text_lists_every_block(self):
        registry = MetricsRegistry()
        assert registry.render_text() == "(no metrics recorded)"
        registry.counter("supersteps").add(3)
        registry.gauge("shards").set(2)
        registry.histogram("delta.bytes").observe(7)
        text = registry.render_text()
        assert "counters:" in text
        assert "supersteps" in text
        assert "gauges:" in text
        assert "histograms:" in text

    def test_reset_keeps_names(self):
        registry = MetricsRegistry()
        registry.counter("supersteps").add(3)
        registry.reset()
        assert registry.snapshot()["counters"] == {"supersteps": 0}


# ---------------------------------------------------------------------------
# Exporters

SPANS = [
    ("superstep", "coordinator", 100.0, 0.5, {"superstep": 1}),
    ("compute", "shard-1", 100.1, 0.2, None),
    ("compute", "shard-0", 100.15, 0.2, None),
    ("wire-send", "wire", 100.05, 0.01, {"kind": "step", "bytes": 64}),
]


class TestExporters:
    def test_write_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(SPANS, path)
        rows = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert rows == [span_dict(span) for span in SPANS]

    def test_chrome_events_metadata_and_normalisation(self):
        events = chrome_trace_events(SPANS)
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        # one thread_name row per lane, coordinator first then shards
        assert [m["args"]["name"] for m in meta] == [
            "coordinator", "shard-0", "shard-1", "wire",
        ]
        tids = {m["args"]["name"]: m["tid"] for m in meta}
        assert len(set(tids.values())) == len(tids)
        # ts is µs from the earliest span start
        by_name = {e["name"]: e for e in slices if e["name"] != "compute"}
        assert by_name["superstep"]["ts"] == pytest.approx(0.0)
        assert by_name["superstep"]["dur"] == pytest.approx(0.5e6)
        assert by_name["wire-send"]["ts"] == pytest.approx(0.05e6)
        assert by_name["wire-send"]["args"] == {"kind": "step", "bytes": 64}
        assert by_name["superstep"]["tid"] == tids["coordinator"]

    def test_write_trace_dispatches_on_suffix(self, tmp_path):
        jsonl = tmp_path / "out.jsonl"
        chrome = tmp_path / "out.json"
        write_trace(SPANS, jsonl)
        write_trace(SPANS, chrome)
        assert jsonl.read_text(encoding="utf-8").startswith("{")
        document = json.loads(chrome.read_text(encoding="utf-8"))
        assert "traceEvents" in document
        assert document["displayTimeUnit"] == "ms"

    def test_write_chrome_trace_parses(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(SPANS, path)
        document = json.loads(path.read_text(encoding="utf-8"))
        assert len(document["traceEvents"]) == len(SPANS) + 4  # + metadata


# ---------------------------------------------------------------------------
# Determinism: tracing is inert on every executor backend


@pytest.mark.parametrize("executor", EXECUTORS)
def test_traced_run_replays_golden_timeline(executor):
    """Tracing + metrics on must not move a single golden byte."""
    tracer = Tracer()
    result = play_scenario(
        get_scenario("mesh-growth"),
        engine="pregel",
        executor=_resolve(executor),
        trace=tracer,
        metrics_registry=MetricsRegistry(),
    )
    expected = json.loads(
        (GOLDEN_DIR / "pregel-mesh-growth.json").read_text(encoding="utf-8")
    )
    assert result.superstep_digest() == expected, (
        f"tracing changed the golden timeline on the {executor} executor"
    )
    # and the run actually produced a timeline + metrics
    names = {span[0] for span in tracer.spans}
    assert {"superstep", "compute", "barrier", "barrier-merge"} <= names
    counters = result.metrics_registry.snapshot()["counters"]
    assert counters["supersteps"] > 0
    assert counters["phase.compute.seconds"] > 0


def test_untraced_run_keeps_null_tracer():
    """The default path stays on the shared disabled tracer — no spans."""
    result = play_scenario(
        get_scenario("mesh-growth"), engine="pregel", executor="inline",
        max_rounds=2,
    )
    assert result.tracer is NULL_TRACER
    assert result.tracer.spans == []


# ---------------------------------------------------------------------------
# The merged multi-host timeline


def test_socket_run_merges_worker_spans():
    """One socket-run trace: worker compute spans beside coordinator spans."""
    tracer = Tracer()
    play_scenario(
        get_scenario("mesh-growth"),
        engine="pregel",
        executor=_socket_executor(),
        trace=tracer,
        max_rounds=3,
    )
    lanes = tracer.lanes()
    assert lanes[0] == "coordinator"
    shard_lanes = [lane for lane in lanes if lane.startswith("shard-")]
    assert len(shard_lanes) >= 2, f"no worker-side lanes in {lanes}"
    assert "wire" in lanes
    # every shard lane carries worker-side compute spans (the coordinator
    # also records its aggregate compute window on its own lane)
    compute_lanes = {s[1] for s in tracer.spans if s[0] == "compute"}
    assert set(shard_lanes) <= compute_lanes
    coordinator_names = {
        s[0] for s in tracer.spans if s[1] == "coordinator"
    }
    assert {"superstep", "barrier", "barrier-merge"} <= coordinator_names
    wire_names = {s[0] for s in tracer.spans if s[1] == "wire"}
    assert wire_names == {"wire-send", "wire-recv"}
    # the merged timeline exports as one valid Chrome trace
    events = chrome_trace_events(tracer.spans)
    named = {
        e["args"]["name"] for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert {"coordinator", "wire", *shard_lanes} == named


# ---------------------------------------------------------------------------
# Reset-at-start: reused executors report per-session numbers


def _run(executor, rounds=2):
    return play_scenario(
        get_scenario("mesh-growth"), engine="pregel", executor=executor,
        max_rounds=rounds,
    )


def test_pipelined_counters_reset_between_sessions():
    executor = PipelinedExecutor(workers=2)
    _run(executor)
    first = executor.steps_streamed
    assert first > 0
    assert executor.merge_seconds > 0
    _run(executor)
    # identical deterministic run → identical per-session step count;
    # the pre-registry behaviour accumulated to 2× here
    assert executor.steps_streamed == first


def test_worker_byte_counters_reset_between_sessions():
    executor = _socket_executor()
    _run(executor)
    first_sent = dict(executor.bytes_sent)
    first_received = dict(executor.bytes_received)
    assert first_sent["step"] > 0
    assert first_received["step"] > 0
    _run(executor)
    assert dict(executor.bytes_sent) == first_sent
    assert dict(executor.bytes_received) == first_received


def test_bind_observability_rehomes_counters():
    """A coordinator-owned registry sees the executor's instruments."""
    registry = MetricsRegistry()
    result = play_scenario(
        get_scenario("mesh-growth"),
        engine="pregel",
        executor=PipelinedExecutor(workers=2),
        metrics_registry=registry,
        max_rounds=2,
    )
    assert result.metrics_registry is registry
    counters = registry.snapshot()["counters"]
    assert counters["executor.steps_streamed"] > 0
    assert counters["executor.merge_seconds"] >= 0
