"""Unit tests for PartitionState bookkeeping."""

import math

import pytest

from repro.graph import Graph
from repro.partitioning import PartitionState, balanced_capacities


class TestBalancedCapacities:
    def test_paper_110_percent(self):
        caps = balanced_capacities(900, 9, slack=1.10)
        assert caps == [110] * 9

    def test_rounds_up(self):
        caps = balanced_capacities(10, 3, slack=1.0)
        assert caps == [4, 4, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            balanced_capacities(10, 0)
        with pytest.raises(ValueError):
            balanced_capacities(10, 2, slack=0.5)


class TestAssignment:
    def test_assign_and_lookup(self, triangle):
        state = PartitionState(triangle, 2)
        state.assign(0, 0)
        assert state.partition_of(0) == 0
        assert state.partition_of_or_none(1) is None
        assert 0 in state
        assert 1 not in state

    def test_double_assign_rejected(self, triangle):
        state = PartitionState(triangle, 2)
        state.assign(0, 0)
        with pytest.raises(ValueError):
            state.assign(0, 1)

    def test_bad_pid_rejected(self, triangle):
        state = PartitionState(triangle, 2)
        with pytest.raises(ValueError):
            state.assign(0, 2)
        with pytest.raises(ValueError):
            state.assign(0, -1)

    def test_capacity_enforcement_optional(self, triangle):
        state = PartitionState(triangle, 2, capacities=[1, 10])
        state.assign(0, 0)
        state.assign(1, 0)  # not enforced by default
        assert state.size(0) == 2

    def test_capacity_enforcement_on(self, triangle):
        state = PartitionState(triangle, 2, capacities=[1, 10])
        state.assign(0, 0)
        with pytest.raises(ValueError):
            state.assign(1, 0, enforce_capacity=True)

    def test_capacities_length_checked(self, triangle):
        with pytest.raises(ValueError):
            PartitionState(triangle, 3, capacities=[1, 2])

    def test_default_capacity_infinite(self, triangle):
        state = PartitionState(triangle, 2)
        assert state.remaining_capacity(0) == math.inf

    def test_sizes_and_members(self, triangle):
        state = PartitionState(triangle, 2)
        state.assign(0, 0)
        state.assign(1, 1)
        state.assign(2, 1)
        assert state.sizes == [1, 2]
        assert state.members(1) == {1, 2}
        assert len(state) == 3


class TestCutTracking:
    def test_cut_counts_on_assign(self, triangle):
        state = PartitionState(triangle, 2)
        state.assign(0, 0)
        state.assign(1, 1)  # edge 0-1 cut
        assert state.cut_edges == 1
        state.assign(2, 0)  # edge 1-2 cut, edge 0-2 internal
        assert state.cut_edges == 2

    def test_move_updates_cut(self, triangle):
        state = PartitionState(triangle, 2)
        state.assign(0, 0)
        state.assign(1, 1)
        state.assign(2, 0)
        state.move(1, 0)
        assert state.cut_edges == 0
        assert state.sizes == [3, 0]

    def test_move_to_same_partition_noop(self, triangle):
        state = PartitionState(triangle, 2)
        state.assign(0, 0)
        state.move(0, 0)
        assert state.size(0) == 1

    def test_cut_ratio(self, triangle):
        state = PartitionState(triangle, 2)
        state.assign(0, 0)
        state.assign(1, 1)
        state.assign(2, 1)
        assert state.cut_ratio() == pytest.approx(2 / 3)

    def test_cut_ratio_empty_graph(self):
        state = PartitionState(Graph(), 2)
        assert state.cut_ratio() == 0.0

    def test_remove_vertex_updates_cut(self, triangle):
        state = PartitionState(triangle, 2)
        state.assign(0, 0)
        state.assign(1, 1)
        state.assign(2, 1)
        assert state.remove_vertex(0) == 0
        assert state.cut_edges == 0
        assert state.remove_vertex(0) is None

    def test_edge_mutation_notifications(self):
        g = Graph(vertices=[0, 1, 2])
        state = PartitionState(g, 2)
        state.assign(0, 0)
        state.assign(1, 1)
        state.assign(2, 0)
        g.add_edge(0, 1)
        state.on_edge_added(0, 1)
        assert state.cut_edges == 1
        g.add_edge(0, 2)
        state.on_edge_added(0, 2)
        assert state.cut_edges == 1
        g.remove_edge(0, 1)
        state.on_edge_removed(0, 1)
        assert state.cut_edges == 0

    def test_neighbour_partition_counts(self, two_cliques):
        state = PartitionState(two_cliques, 2)
        for v in range(4):
            state.assign(v, 0)
        for v in range(4, 8):
            state.assign(v, 1)
        counts = state.neighbour_partition_counts(3)  # bridge vertex
        assert counts == {0: 3, 1: 1}

    def test_neighbour_counts_ignore_unassigned(self, triangle):
        state = PartitionState(triangle, 2)
        state.assign(0, 0)
        assert state.neighbour_partition_counts(1) == {0: 1}

    def test_incremental_matches_recompute_after_churn(self, small_mesh):
        from repro.utils import make_rng

        rng = make_rng(0, "churn")
        state = PartitionState(small_mesh, 4)
        vertices = list(small_mesh.vertices())
        for v in vertices:
            state.assign(v, rng.randrange(4))
        for _ in range(500):
            v = vertices[rng.randrange(len(vertices))]
            state.move(v, rng.randrange(4))
        assert state.cut_edges == state.recompute_cut_edges()
        state.validate()


class TestMetricsAndCopy:
    def test_imbalance_perfect(self, two_cliques):
        state = PartitionState(two_cliques, 2)
        for v in range(4):
            state.assign(v, 0)
        for v in range(4, 8):
            state.assign(v, 1)
        assert state.imbalance() == 1.0

    def test_imbalance_skewed(self, two_cliques):
        state = PartitionState(two_cliques, 2)
        for v in range(8):
            state.assign(v, 0)
        assert state.imbalance() == 2.0

    def test_imbalance_empty(self, triangle):
        assert PartitionState(triangle, 2).imbalance() == 1.0

    def test_copy_independent(self, triangle):
        state = PartitionState(triangle, 2)
        state.assign(0, 0)
        state.assign(1, 1)
        state.assign(2, 1)
        clone = state.copy()
        clone.move(1, 0)
        clone.move(2, 0)
        assert state.partition_of(1) == 1
        assert clone.partition_of(1) == 0
        assert state.sizes != clone.sizes
        assert state.cut_edges == 2 and clone.cut_edges == 0

    def test_validate_catches_drift(self, triangle):
        state = PartitionState(triangle, 2)
        state.assign(0, 0)
        state._cut_edges = 99
        with pytest.raises(AssertionError):
            state.validate()

    def test_num_partitions_validation(self, triangle):
        with pytest.raises(ValueError):
            PartitionState(triangle, 0)
