"""Unit tests for the initial partitioning strategies (HSH/RND/DGR/MNN)."""

import pytest

from repro.partitioning import (
    HashPartitioner,
    LinearDeterministicGreedy,
    MinimumNeighbours,
    RandomPartitioner,
    STRATEGIES,
    balanced_capacities,
    make_partitioner,
)
from repro.utils import stable_hash

ALL_NAMES = ["HSH", "RND", "DGR", "MNN"]


def make_state(partitioner, graph, k=3):
    caps = balanced_capacities(graph.num_vertices, k)
    return partitioner.partition(graph, k, caps)


class TestCommonContract:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_every_vertex_assigned_once(self, small_mesh, name):
        state = make_state(make_partitioner(name), small_mesh)
        assert len(state) == small_mesh.num_vertices
        assert sum(state.sizes) == small_mesh.num_vertices
        state.validate()

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_deterministic(self, small_powerlaw, name):
        a = make_state(make_partitioner(name, seed=3), small_powerlaw)
        b = make_state(make_partitioner(name, seed=3), small_powerlaw)
        assert dict(a.assignment_items()) == dict(b.assignment_items())

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_streaming_place_one_vertex(self, small_mesh, name):
        partitioner = make_partitioner(name)
        state = make_state(partitioner, small_mesh)
        small_mesh.add_vertex("newbie")
        pid = partitioner.place(state, "newbie")
        assert state.partition_of("newbie") == pid

    def test_registry_contains_metis(self):
        assert "METIS" in STRATEGIES

    def test_registry_unknown_name(self):
        with pytest.raises(ValueError):
            make_partitioner("NOPE")


class TestHash:
    def test_matches_stable_hash(self, small_mesh):
        state = make_state(HashPartitioner(), small_mesh, k=5)
        for v in small_mesh.vertices():
            assert state.partition_of(v) == stable_hash(v) % 5

    def test_roughly_balanced(self, small_mesh):
        state = make_state(HashPartitioner(), small_mesh, k=3)
        expected = small_mesh.num_vertices / 3
        for size in state.sizes:
            assert abs(size - expected) < expected * 0.35

    def test_high_cut_on_mesh(self, small_mesh):
        # Hash ignores locality: cut ratio near 1 - 1/k on a mesh.
        state = make_state(HashPartitioner(), small_mesh, k=3)
        assert state.cut_ratio() > 0.5


class TestRandom:
    def test_balanced_within_one(self, small_mesh):
        state = make_state(RandomPartitioner(seed=0), small_mesh, k=3)
        assert max(state.sizes) - min(state.sizes) <= 1

    def test_seed_changes_layout(self, small_mesh):
        a = make_state(RandomPartitioner(seed=0), small_mesh)
        b = make_state(RandomPartitioner(seed=1), small_mesh)
        assert dict(a.assignment_items()) != dict(b.assignment_items())


class TestLinearDeterministicGreedy:
    def test_better_than_hash_on_mesh(self, small_mesh):
        hsh = make_state(HashPartitioner(), small_mesh, k=3)
        dgr = make_state(LinearDeterministicGreedy(), small_mesh, k=3)
        assert dgr.cut_ratio() < hsh.cut_ratio()

    def test_respects_capacities(self, small_mesh):
        k = 3
        caps = balanced_capacities(small_mesh.num_vertices, k, slack=1.05)
        state = LinearDeterministicGreedy().partition(small_mesh, k, caps)
        for pid in range(k):
            assert state.size(pid) <= caps[pid]

    def test_default_capacities_when_none(self, triangle):
        state = LinearDeterministicGreedy().partition(triangle, 2)
        assert len(state) == 3

    def test_custom_stream_order(self, path_graph):
        order = [5, 4, 3, 2, 1, 0]
        state = LinearDeterministicGreedy(stream_order=order).partition(
            path_graph, 2
        )
        assert len(state) == 6

    def test_keeps_neighbours_together(self, two_cliques):
        state = LinearDeterministicGreedy().partition(
            two_cliques, 2, capacities=[5, 5]
        )
        # 13 edges total; greedy placement keeps all but the bridge
        # vertex's cross edges internal (worst case: bridge vertex lands
        # with its bridge neighbour, cutting its 3 clique edges).
        assert state.cut_edges <= 3


class TestMinimumNeighbours:
    def test_spreads_neighbours_apart(self, two_cliques):
        mnn = make_state(MinimumNeighbours(), two_cliques, k=2)
        dgr = make_state(LinearDeterministicGreedy(), two_cliques, k=2)
        # MNN is the adversarial strategy: more cut edges than DGR.
        assert mnn.cut_edges >= dgr.cut_edges

    def test_respects_capacities(self, small_mesh):
        k = 4
        caps = balanced_capacities(small_mesh.num_vertices, k, slack=1.02)
        state = MinimumNeighbours().partition(small_mesh, k, caps)
        for pid in range(k):
            assert state.size(pid) <= caps[pid]

    def test_first_vertex_goes_to_roomiest(self, triangle):
        state = MinimumNeighbours().partition(triangle, 2, capacities=[2, 9])
        assert state.partition_of_or_none(0) == 1
