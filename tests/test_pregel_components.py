"""Unit tests for Pregel building blocks: router, aggregators, protocols."""

import pytest

from repro.pregel import (
    Aggregators,
    CapacityProtocol,
    MaxAggregator,
    MessageRouter,
    MigrationProtocol,
    MinAggregator,
    NetworkStats,
    SumAggregator,
    sum_combiner,
)
from repro.pregel.fault import Checkpointer, FaultPlan


class TestNetworkStats:
    def test_counters_accumulate(self):
        net = NetworkStats()
        net.count_local(3)
        net.count_remote(2)
        net.count_compute(1.5)
        assert net.current.local_messages == 3
        assert net.current.remote_messages == 2
        assert net.current.total_messages == 5
        assert net.current.remote_fraction == pytest.approx(0.4)

    def test_barrier_rotates_records(self):
        net = NetworkStats()
        net.count_remote(1)
        closed = net.barrier(superstep=1)
        assert closed.remote_messages == 1
        assert net.current.remote_messages == 0
        assert net.history == [closed]

    def test_totals(self):
        net = NetworkStats()
        net.count_remote(2)
        net.barrier(1)
        net.count_remote(3)
        net.count_migration(1)
        net.barrier(2)
        totals = net.totals()
        assert totals.remote_messages == 5
        assert totals.migrations == 1

    def test_remote_fraction_empty(self):
        assert NetworkStats().current.remote_fraction == 0.0


class TestMessageRouter:
    def setup_method(self):
        self.placement = {"a": 0, "b": 0, "c": 1}
        self.net = NetworkStats()
        self.router = MessageRouter(self.placement, self.net)

    def test_local_vs_remote_classification(self):
        self.router.send("a", "b", 1)  # same worker
        self.router.send("a", "c", 2)  # cross worker
        inbox = self.router.deliver()
        assert inbox == {"b": [1], "c": [2]}
        assert self.net.current.local_messages == 1
        assert self.net.current.remote_messages == 1

    def test_delivery_delayed_until_deliver(self):
        self.router.send("a", "b", 1)
        assert self.router.pending_inbox == {}
        self.router.deliver()
        assert self.router.pending_inbox == {"b": [1]}

    def test_combiner_folds_per_source_worker(self):
        self.router.set_combiner(sum_combiner)
        self.router.send("a", "c", 1)
        self.router.send("b", "c", 2)  # same worker 0: combined
        inbox = self.router.deliver()
        assert inbox == {"c": [3]}
        assert self.net.current.remote_messages == 1

    def test_combiner_does_not_fold_across_workers(self):
        self.placement["d"] = 1
        self.router.set_combiner(sum_combiner)
        self.router.send("a", "b", 1)  # from worker 0
        self.router.send("c", "b", 2)  # from worker 1
        inbox = self.router.deliver()
        assert sorted(inbox["b"]) == [1, 2]

    def test_vanished_destination_dropped(self):
        self.router.send("a", "ghost", 1)
        inbox = self.router.deliver()
        assert inbox == {}

    def test_routing_follows_placement_at_delivery(self):
        # The deferred-migration guarantee: classification happens at
        # delivery time against the current placement.
        self.router.send("a", "c", 1)
        self.placement["c"] = 0  # c "migrated" to worker 0 before barrier
        self.router.deliver()
        assert self.net.current.local_messages == 1
        assert self.net.current.remote_messages == 0

    def test_drop_vertex(self):
        self.router.send("a", "b", 1)
        self.router.deliver()
        self.router.drop_vertex("b")
        assert self.router.pending_inbox == {}

    def test_has_pending(self):
        assert not self.router.has_pending()
        self.router.send("a", "b", 1)
        assert self.router.has_pending()
        self.router.deliver()
        assert self.router.has_pending()


class TestAggregators:
    def test_sum_lifecycle(self):
        aggs = Aggregators()
        aggs.register("count", SumAggregator)
        aggs.contribute("count", 3)
        aggs.contribute("count", 4)
        assert aggs.previous("count") == 0  # not visible yet
        aggs.barrier()
        assert aggs.previous("count") == 7
        aggs.barrier()
        assert aggs.previous("count") == 0  # reset each superstep

    def test_max_min(self):
        aggs = Aggregators()
        aggs.register("hi", MaxAggregator)
        aggs.register("lo", MinAggregator)
        for value in (3, 9, 1):
            aggs.contribute("hi", value)
            aggs.contribute("lo", value)
        aggs.barrier()
        assert aggs.previous("hi") == 9
        assert aggs.previous("lo") == 1

    def test_empty_max_is_none(self):
        aggs = Aggregators()
        aggs.register("hi", MaxAggregator)
        aggs.barrier()
        assert aggs.previous("hi") is None

    def test_unregistered_raises(self):
        aggs = Aggregators()
        with pytest.raises(KeyError):
            aggs.contribute("nope", 1)
        with pytest.raises(KeyError):
            aggs.previous("nope")

    def test_names(self):
        aggs = Aggregators()
        aggs.register("a", SumAggregator)
        assert aggs.names() == ["a"]


class TestMigrationProtocol:
    def setup_method(self):
        self.net = NetworkStats()
        self.protocol = MigrationProtocol(self.net, num_workers=3)
        self.placement = {}

    def _update(self, vid, worker):
        self.placement[vid] = worker

    def test_requests_invisible_until_announce(self):
        self.protocol.request("v", 0, 1)
        assert self.placement == {}
        assert self.protocol.requested_count == 1
        announced = self.protocol.announce_barrier(self._update)
        assert announced == [("v", 0, 1)]
        assert self.placement == {"v": 1}

    def test_migrating_state_spans_one_superstep(self):
        self.protocol.request("v", 0, 1)
        assert not self.protocol.is_migrating("v")
        self.protocol.announce_barrier(self._update)
        assert self.protocol.is_migrating("v")
        completed = self.protocol.complete_barrier()
        assert completed == {"v": (0, 1)}
        assert not self.protocol.is_migrating("v")

    def test_notification_traffic_counted(self):
        self.protocol.request("a", 0, 1)
        self.protocol.request("b", 0, 2)
        self.protocol.request("c", 1, 2)
        self.protocol.announce_barrier(self._update)
        # two origin workers × (3 − 1) peers
        assert self.net.current.migration_notifications == 4

    def test_migration_traffic_counted_at_completion(self):
        self.protocol.request("v", 0, 1)
        self.protocol.announce_barrier(self._update)
        assert self.net.current.migrations == 0
        self.protocol.complete_barrier()
        assert self.net.current.migrations == 1

    def test_same_worker_request_rejected(self):
        with pytest.raises(ValueError):
            self.protocol.request("v", 1, 1)

    def test_cancel_vertex(self):
        self.protocol.request("v", 0, 1)
        self.protocol.cancel_vertex("v")
        assert self.protocol.announce_barrier(self._update) == []
        self.protocol.request("w", 0, 1)
        self.protocol.announce_barrier(self._update)
        self.protocol.cancel_vertex("w")
        assert self.protocol.complete_barrier() == {}

    def test_single_worker_no_notifications(self):
        protocol = MigrationProtocol(self.net, num_workers=1)
        assert self.net.current.migration_notifications == 0


class TestCapacityProtocol:
    def test_one_barrier_delay(self):
        net = NetworkStats()
        protocol = CapacityProtocol(net, num_workers=3)
        assert protocol.visible_capacities() is None
        protocol.publish([5, 6, 7])
        assert protocol.visible_capacities() == [5, 6, 7]

    def test_broadcast_traffic(self):
        net = NetworkStats()
        protocol = CapacityProtocol(net, num_workers=4)
        protocol.publish([1, 2, 3, 4])
        assert net.current.capacity_messages == 4 * 3

    def test_returns_copy(self):
        protocol = CapacityProtocol(NetworkStats(), num_workers=2)
        protocol.publish([1, 2])
        view = protocol.visible_capacities()
        view[0] = 99
        assert protocol.visible_capacities() == [1, 2]

    def test_single_worker_no_traffic(self):
        net = NetworkStats()
        CapacityProtocol(net, num_workers=1).publish([3])
        assert net.current.capacity_messages == 0


class TestCheckpointer:
    def test_interval(self):
        cp = Checkpointer(interval=5)
        assert cp.maybe_checkpoint(5, {"v": 1}) is True
        assert cp.maybe_checkpoint(6, {"v": 2}) is False
        assert cp.last_checkpoint_superstep == 5

    def test_restore_known_and_new_vertices(self):
        cp = Checkpointer(interval=1)
        cp.maybe_checkpoint(1, {"old": 10})
        values = {"old": 99, "new": 5}
        restored = cp.restore_vertices(
            ["old", "new"], values, reinitialise=lambda vid: 0
        )
        assert restored == 2
        assert values == {"old": 10, "new": 0}

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Checkpointer(interval=0)


class TestFaultPlan:
    def test_schedule_lookup(self):
        plan = FaultPlan().add(7, 2)
        assert plan.worker_failing_at(7) == 2
        assert plan.worker_failing_at(8) is None
