"""System tests for the Pregel facade: BSP semantics, background
partitioning, stream mutations, failure recovery."""

import pytest

from repro.apps import PageRank
from repro.generators import mesh_3d
from repro.graph import AddEdge, AddVertex, RemoveEdge, RemoveVertex
from repro.pregel import FaultPlan, PregelConfig, PregelSystem, VertexProgram


class EchoProgram(VertexProgram):
    """Sends its superstep number to neighbours; value = last messages."""

    def initial_value(self, vertex_id, graph):
        return []

    def compute(self, ctx, messages):
        ctx.value = messages
        ctx.send_to_neighbors(ctx.superstep)


class SilentProgram(VertexProgram):
    """Computes nothing and sends nothing."""

    def initial_value(self, vertex_id, graph):
        return 0

    def compute(self, ctx, messages):
        ctx.vote_to_halt()


def make_system(graph=None, adaptive=True, seed=0, k=4, **kw):
    graph = graph or mesh_3d(6)
    config = PregelConfig(num_workers=k, adaptive=adaptive, seed=seed, **kw)
    return PregelSystem(graph, EchoProgram(), config)


class TestBspSemantics:
    def test_messages_arrive_next_superstep(self):
        system = make_system()
        system.run_superstep()
        # superstep 1 sent "1"; nothing received yet during superstep 1
        assert all(v == [] for v in system.values.values())
        system.run_superstep()
        # during superstep 2 every vertex sees its neighbours' "1"s
        some_vertex = next(iter(system.graph.vertices()))
        assert set(system.values[some_vertex]) == {1}

    def test_superstep_counter(self):
        system = make_system()
        reports = system.run(3)
        assert [r.superstep for r in reports] == [1, 2, 3]

    def test_compute_counts_all_vertices_in_continuous_mode(self):
        system = make_system()
        report = system.run_superstep()
        assert report.computed_vertices == system.graph.num_vertices

    def test_halted_vertices_skipped_without_messages(self):
        graph = mesh_3d(3)
        system = PregelSystem(
            graph,
            SilentProgram(),
            PregelConfig(num_workers=2, adaptive=False, continuous=False),
        )
        first = system.run_superstep()
        second = system.run_superstep()
        assert first.computed_vertices == graph.num_vertices
        assert second.computed_vertices == 0

    def test_run_until_quiescent_stops(self):
        graph = mesh_3d(3)
        system = PregelSystem(
            graph,
            SilentProgram(),
            PregelConfig(num_workers=2, adaptive=False, continuous=False),
        )
        reports = system.run_until_quiescent(max_supersteps=50)
        assert len(reports) < 50

    def test_traffic_recorded_per_superstep(self):
        system = make_system(adaptive=False)
        reports = system.run(2)
        # messages sent at superstep 1 deliver at its barrier
        assert reports[0].traffic.total_messages > 0
        assert reports[0].traffic.compute_units > 0


class TestBackgroundPartitioning:
    def test_cut_ratio_improves(self):
        system = make_system(adaptive=True, seed=1)
        initial = system.state.cut_ratio()
        system.run(40)
        assert system.state.cut_ratio() < 0.7 * initial
        system.state.validate()

    def test_static_mode_never_migrates(self):
        system = make_system(adaptive=False)
        reports = system.run(10)
        assert all(r.migrations_announced == 0 for r in reports)
        assert all(r.traffic.migrations == 0 for r in reports)

    def test_no_migrations_at_first_superstep_without_capacity_info(self):
        # Capacity info needs one barrier to propagate... we publish the
        # initial vector at construction, so migrations may start at
        # superstep 1; what must hold is the deferral: announcements at
        # superstep t become physical transfers at t+1.
        system = make_system(adaptive=True, seed=2)
        first = system.run_superstep()
        second = system.run_superstep()
        assert first.traffic.migrations == 0
        assert second.traffic.migrations == first.migrations_announced

    def test_remote_messages_drop_after_convergence(self):
        system = make_system(adaptive=True, seed=3)
        reports = system.run(50)
        early_remote = reports[1].traffic.remote_messages
        late_remote = reports[-1].traffic.remote_messages
        assert late_remote < early_remote

    def test_migrations_decay(self):
        system = make_system(adaptive=True, seed=4)
        reports = system.run(60)
        early = sum(r.migrations_announced for r in reports[:10])
        late = sum(r.migrations_announced for r in reports[-10:])
        assert late < early

    def test_capacity_and_notification_overhead_counted(self):
        system = make_system(adaptive=True, seed=5)
        reports = system.run(3)
        assert reports[0].traffic.capacity_messages > 0

    def test_partitioning_converges_flag(self):
        system = make_system(adaptive=True, seed=6, quiet_window=5)
        system.run(80)
        assert system.partitioning_converged


class TestStreamMutations:
    def test_add_edge_applied_at_barrier(self):
        system = make_system(adaptive=False)
        system.inject_events([AddEdge("x", "y")])
        assert "x" not in system.graph  # not yet
        report = system.run_superstep()
        assert report.mutations_applied == 1
        assert system.graph.has_edge("x", "y")
        assert system.state.partition_of_or_none("x") is not None
        assert system.values["x"] == []

    def test_remove_vertex_cleans_everything(self):
        system = make_system(adaptive=False)
        victim = next(iter(system.graph.vertices()))
        system.run_superstep()
        system.inject_events([RemoveVertex(victim)])
        system.run_superstep()
        assert victim not in system.graph
        assert victim not in system.values
        assert system.state.partition_of_or_none(victim) is None
        assert system.state.cut_edges == system.state.recompute_cut_edges()

    def test_messages_to_removed_vertex_dropped(self):
        system = make_system(adaptive=False)
        victim = next(iter(system.graph.vertices()))
        system.run_superstep()  # everyone messaged neighbours
        system.inject_events([RemoveVertex(victim)])
        system.run_superstep()  # delivery + removal at barrier
        report = system.run_superstep()
        assert report.superstep == 3  # no crash processing inboxes

    def test_mutations_reset_convergence(self):
        system = make_system(adaptive=True, seed=7, quiet_window=5)
        system.run(60)
        assert system.partitioning_converged
        system.inject_events([AddVertex("fresh")])
        system.run_superstep()
        assert not system.partitioning_converged

    def test_remove_edge(self):
        system = make_system(adaptive=False)
        u, v = next(iter(system.graph.edges()))
        system.inject_events([RemoveEdge(u, v)])
        system.run_superstep()
        assert not system.graph.has_edge(u, v)
        assert system.state.cut_edges == system.state.recompute_cut_edges()

    def test_duplicate_events_counted_once(self):
        system = make_system(adaptive=False)
        system.inject_events([AddVertex("z"), AddVertex("z")])
        report = system.run_superstep()
        assert report.mutations_applied == 1


class TestFaultRecovery:
    def test_failure_restores_checkpointed_values(self):
        graph = mesh_3d(4)
        plan = FaultPlan().add(6, 0)
        system = PregelSystem(
            graph,
            PageRank(),
            PregelConfig(
                num_workers=2, adaptive=False, seed=0, checkpoint_interval=5
            ),
            fault_plan=plan,
        )
        system.run(5)
        values_at_checkpoint = dict(system.values)
        report = system.run_superstep()  # superstep 6: worker 0 dies
        assert report.failed_worker == 0
        assert report.traffic.recovery_events == 1
        for v, pid in system.state.assignment_items():
            if pid == 0:
                assert system.values[v] == values_at_checkpoint[v]

    def test_failure_drops_inflight_messages(self):
        graph = mesh_3d(4)
        plan = FaultPlan().add(2, 1)
        system = PregelSystem(
            graph,
            EchoProgram(),
            PregelConfig(num_workers=2, adaptive=False, seed=0),
            fault_plan=plan,
        )
        system.run(3)
        # messages produced during superstep 2 were lost at its barrier:
        # during superstep 3 every inbox is empty
        assert all(v == [] for v in system.values.values())

    def test_partitioning_survives_failure(self):
        graph = mesh_3d(5)
        plan = FaultPlan().add(4, 0)
        system = PregelSystem(
            graph,
            EchoProgram(),
            PregelConfig(num_workers=3, adaptive=True, seed=1),
            fault_plan=plan,
        )
        system.run(10)
        system.state.validate()
        assert len(system.state) == graph.num_vertices


class TestReportContents:
    def test_sizes_sum_to_vertices(self):
        system = make_system()
        report = system.run_superstep()
        assert sum(report.sizes) == system.graph.num_vertices

    def test_per_worker_compute_length(self):
        system = make_system(k=5)
        report = system.run_superstep()
        assert len(report.per_worker_compute) == 5
        assert sum(report.per_worker_compute) == pytest.approx(
            report.traffic.compute_units
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PregelConfig(num_workers=0)
        with pytest.raises(ValueError):
            PregelConfig(willingness=2.0)
