"""Property tests for the event algebra and stream tie ordering.

Two families:

* **Inverse replay** — applying a whole event *sequence* forward and then
  replaying the recorded inverses backward restores the graph exactly
  (``test_property_graph`` covers single events; scenarios replay long
  sequences, so the composition property gets pinned here too);
* **FIFO tie order** — equal-time events in an :class:`EventStream` are
  totally ordered by creation sequence, so push / extend / merge / slice all
  preserve a deterministic first-in-first-out order for ties.  This is the
  regression test for the tie-order bug: ordering used to fall through to
  the dataclass comparison of the non-comparable payload field.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    AddEdge,
    AddVertex,
    EventStream,
    Graph,
    RemoveEdge,
    RemoveVertex,
    TimedEvent,
    apply_event,
    apply_events,
    invert_event,
)

VERTEX_IDS = st.integers(min_value=0, max_value=15)
TIMES = st.sampled_from([0.0, 1.0, 2.0, 3.0])


def event_strategy():
    add_vertex = st.builds(AddVertex, VERTEX_IDS)
    remove_vertex = st.builds(RemoveVertex, VERTEX_IDS)
    edge_pair = st.tuples(VERTEX_IDS, VERTEX_IDS).filter(lambda p: p[0] != p[1])
    add_edge = edge_pair.map(lambda p: AddEdge(*p))
    remove_edge = edge_pair.map(lambda p: RemoveEdge(*p))
    return st.one_of(add_vertex, remove_vertex, add_edge, remove_edge)


EDGES = st.sets(
    st.tuples(VERTEX_IDS, VERTEX_IDS).filter(lambda p: p[0] != p[1]),
    max_size=25,
)


@given(edges=EDGES, events=st.lists(event_strategy(), max_size=50))
@settings(max_examples=120, deadline=None)
def test_apply_then_inverted_replay_restores_graph(edges, events):
    graph = Graph(edges=list(edges))
    vertices_before = set(graph.vertices())
    adjacency_before = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    edges_before = graph.num_edges
    undo_stack = []
    for event in events:
        undo_stack.append(invert_event(event, graph))
        apply_event(graph, event)
    for inverse in reversed(undo_stack):
        apply_events(graph, inverse)
    graph.validate()
    assert set(graph.vertices()) == vertices_before
    assert {v: set(graph.neighbors(v)) for v in graph.vertices()} == adjacency_before
    assert graph.num_edges == edges_before


# ----------------------------------------------------------------------
# FIFO tie order
# ----------------------------------------------------------------------


@given(times=st.lists(TIMES, max_size=40))
@settings(max_examples=120, deadline=None)
def test_push_is_fifo_for_equal_times(times):
    stream = EventStream()
    for i, t in enumerate(times):
        stream.push(t, ("tag", i))  # payloads are deliberately non-comparable
    drained = [te.event[1] for te in stream]
    assert sorted(drained) == list(range(len(times)))  # nothing lost
    grouped = {}
    for te in stream:
        grouped.setdefault(te.time, []).append(te.event[1])
    for time, pushed_order in grouped.items():
        assert pushed_order == sorted(pushed_order), (
            f"pushes at t={time} were reordered: {pushed_order}"
        )


@given(times=st.lists(TIMES, max_size=30))
@settings(max_examples=100, deadline=None)
def test_extend_preserves_creation_order_for_ties(times):
    records = [TimedEvent(t, ("tag", i)) for i, t in enumerate(times)]
    stream = EventStream()
    stream.extend(reversed(records))  # adversarial insertion order
    grouped = {}
    for te in stream:
        grouped.setdefault(te.time, []).append(te.event[1])
    for created_order in grouped.values():
        assert created_order == sorted(created_order)


@given(times_a=st.lists(TIMES, max_size=25), times_b=st.lists(TIMES, max_size=25))
@settings(max_examples=100, deadline=None)
def test_merge_is_stable_per_source_stream(times_a, times_b):
    a = EventStream()
    for i, t in enumerate(times_a):
        a.push(t, ("a", i))
    b = EventStream()
    for i, t in enumerate(times_b):
        b.push(t, ("b", i))
    merged = a.merged_with(b)
    assert len(merged) == len(a) + len(b)
    assert [te.time for te in merged] == sorted(te.time for te in merged)
    # Each source's events appear in exactly their original relative order.
    from_a = [te.event for te in merged if te.event[0] == "a"]
    from_b = [te.event for te in merged if te.event[0] == "b"]
    assert from_a == [te.event for te in a]
    assert from_b == [te.event for te in b]


@given(times_a=st.lists(TIMES, max_size=25), times_b=st.lists(TIMES, max_size=25))
@settings(max_examples=100, deadline=None)
def test_merge_tie_order_invariant_to_construction_order(times_a, times_b):
    """Regression: cross-stream tie order must not depend on which stream's
    factory ran first in the process.

    ``TimedEvent.seq`` comes from one process-global counter, so sorting the
    concatenation (the old implementation) ordered equal-time events from
    two streams by *creation history* — building the same two streams in the
    opposite order flipped every tie.  The rank-based merge pins ties to
    (time, receiver-first, per-stream order) whatever else the process built.
    """

    def build(times, tag):
        stream = EventStream()
        for i, t in enumerate(times):
            stream.push(t, (tag, i))
        return stream

    # Construction order A-then-B vs B-then-A: global seqs differ wildly.
    a_1 = build(times_a, "a")
    b_1 = build(times_b, "b")
    first = a_1.merged_with(b_1)
    b_2 = build(times_b, "b")
    a_2 = build(times_a, "a")
    second = a_2.merged_with(b_2)
    assert [(te.time, te.event) for te in first] == [
        (te.time, te.event) for te in second
    ]
    # And the pinned tie rank: at every timestamp, all of the receiver's
    # events precede the argument's.
    for stream in (first, second):
        by_time = {}
        for te in stream:
            by_time.setdefault(te.time, []).append(te.event[0])
        for tags in by_time.values():
            assert tags == sorted(tags)  # "a" ranks before "b"


@given(
    times=st.lists(TIMES, max_size=30),
    bounds=st.tuples(TIMES, TIMES).map(sorted),
)
@settings(max_examples=100, deadline=None)
def test_slice_preserves_order_and_half_open_window(times, bounds):
    lo, hi = bounds
    stream = EventStream()
    for i, t in enumerate(times):
        stream.push(t, ("tag", i))
    sliced = stream.sliced(lo, hi)
    assert all(lo <= te.time < hi for te in sliced)
    # The slice is exactly the matching subsequence, order preserved.
    expected = [te.event for te in stream if lo <= te.time < hi]
    assert [te.event for te in sliced] == expected
