"""Property-based tests: graph invariants under arbitrary mutation sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    AddEdge,
    AddVertex,
    Graph,
    RemoveEdge,
    RemoveVertex,
    apply_event,
    invert_event,
)

VERTEX_IDS = st.integers(min_value=0, max_value=15)


def event_strategy():
    add_vertex = st.builds(AddVertex, VERTEX_IDS)
    remove_vertex = st.builds(RemoveVertex, VERTEX_IDS)
    edge_pair = st.tuples(VERTEX_IDS, VERTEX_IDS).filter(lambda p: p[0] != p[1])
    add_edge = edge_pair.map(lambda p: AddEdge(*p))
    remove_edge = edge_pair.map(lambda p: RemoveEdge(*p))
    return st.one_of(add_vertex, remove_vertex, add_edge, remove_edge)


@given(st.lists(event_strategy(), max_size=120))
@settings(max_examples=120, deadline=None)
def test_graph_invariants_hold_under_any_mutation_sequence(events):
    graph = Graph()
    for event in events:
        apply_event(graph, event)
    graph.validate()
    # edges() reports each edge exactly once and consistently with has_edge
    listed = list(graph.edges())
    assert len(listed) == graph.num_edges
    for u, v in listed:
        assert graph.has_edge(u, v) and graph.has_edge(v, u)


@given(st.lists(event_strategy(), max_size=60), event_strategy())
@settings(max_examples=150, deadline=None)
def test_invert_event_is_exact_undo(setup_events, event):
    graph = Graph()
    for e in setup_events:
        apply_event(graph, e)
    vertices_before = set(graph.vertices())
    edges_before = set(map(frozenset, graph.edges()))
    inverse = invert_event(event, graph)
    apply_event(graph, event)
    for inv in inverse:
        apply_event(graph, inv)
    assert set(graph.vertices()) == vertices_before
    assert set(map(frozenset, graph.edges())) == edges_before
    graph.validate()


@given(st.lists(event_strategy(), max_size=80))
@settings(max_examples=80, deadline=None)
def test_copy_equals_original_and_detaches(events):
    graph = Graph()
    for event in events:
        apply_event(graph, event)
    clone = graph.copy()
    assert set(clone.vertices()) == set(graph.vertices())
    assert set(map(frozenset, clone.edges())) == set(
        map(frozenset, graph.edges())
    )
    clone.add_vertex("unique-to-clone")
    assert "unique-to-clone" not in graph


@given(
    st.sets(st.tuples(VERTEX_IDS, VERTEX_IDS).filter(lambda p: p[0] != p[1]),
            max_size=40)
)
@settings(max_examples=80, deadline=None)
def test_connected_components_partition_vertex_set(edge_pairs):
    graph = Graph(edges=list(edge_pairs))
    components = graph.connected_components()
    seen = set()
    for component in components:
        assert not (component & seen)  # disjoint
        seen |= component
    assert seen == set(graph.vertices())
    # no edge crosses components
    index = {}
    for i, component in enumerate(components):
        for v in component:
            index[v] = i
    for u, v in graph.edges():
        assert index[u] == index[v]
