"""Property: incremental metrics ≡ full recompute under any interleaving.

The incremental engine maintains loads (and, via ``PartitionState``, cut and
sizes) as deltas per admitted move and applied event.  These tests drive an
:class:`AdaptiveRunner` through arbitrary interleavings of event batches and
adaptive iterations — on both backends, under both the paper's vertex
balance and the degree-sensitive edge balance — and assert the maintained
values are *bit-identical* to from-scratch recomputation, and that the
``metrics="recompute"`` audit mode (which re-derives and cross-checks every
round) replays the exact same timeline.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdaptiveConfig, AdaptiveRunner, EdgeBalance, VertexBalance
from repro.graph import (
    AddEdge,
    AddVertex,
    CompactGraph,
    Graph,
    RemoveEdge,
    RemoveVertex,
)
from repro.partitioning import HashPartitioner, balanced_capacities

VERTEX_IDS = st.integers(min_value=0, max_value=15)
NEW_IDS = st.integers(min_value=16, max_value=23)  # arrivals beyond the base


def event_strategy():
    ids = st.one_of(VERTEX_IDS, NEW_IDS)
    edge_pair = st.tuples(ids, ids).filter(lambda p: p[0] != p[1])
    return st.one_of(
        st.builds(AddVertex, ids),
        st.builds(RemoveVertex, ids),
        edge_pair.map(lambda p: AddEdge(*p)),
        edge_pair.map(lambda p: RemoveEdge(*p)),
    )


# An op is either one adaptive iteration or a batch of graph events.
OPS = st.lists(
    st.one_of(
        st.just("step"),
        st.lists(event_strategy(), min_size=1, max_size=6),
    ),
    max_size=10,
)

EDGES = st.sets(
    st.tuples(VERTEX_IDS, VERTEX_IDS).filter(lambda p: p[0] != p[1]),
    min_size=3,
    max_size=25,
)

BALANCES = st.sampled_from(["vertex", "edge"])
BACKENDS = st.sampled_from([Graph, CompactGraph])


def _make_balance(name):
    return VertexBalance() if name == "vertex" else EdgeBalance()


def _make_runner(graph_cls, edges, seed, balance_name, metrics):
    graph = graph_cls(edges=list(edges))
    caps = balanced_capacities(graph.num_vertices, 3, slack=1.3)
    state = HashPartitioner().partition(graph, 3, list(caps))
    config = AdaptiveConfig(
        seed=seed,
        quiet_window=5,
        balance=_make_balance(balance_name),
        metrics=metrics,
    )
    return AdaptiveRunner(graph, state, config)


def _drive(runner, ops):
    for op in ops:
        if op == "step":
            runner.step()
        else:
            runner.apply_events(op)


def _recomputed_loads(runner):
    balance = runner.config.balance
    loads = [0.0] * runner.state.num_partitions
    for v, pid in runner.state.assignment_items():
        loads[pid] += balance.load_of(runner.graph, v)
    return loads


@given(
    edges=EDGES,
    ops=OPS,
    seed=st.integers(0, 20),
    balance_name=BALANCES,
    graph_cls=BACKENDS,
)
@settings(max_examples=120, deadline=None)
def test_incremental_metrics_equal_full_recompute(
    edges, ops, seed, balance_name, graph_cls
):
    runner = _make_runner(graph_cls, edges, seed, balance_name, "incremental")
    _drive(runner, ops)
    # Cut and sizes: PartitionState's delta bookkeeping vs full recount.
    runner.state.validate()
    # Loads: the incremental engine vs a from-scratch rebuild — exact
    # equality, not approximate (loads are integer-valued under both
    # shipped policies, so delta maintenance must be bit-exact).
    assert runner.metrics.loads == _recomputed_loads(runner)
    # The audit API itself must pass.
    assert runner.metrics.cross_check()


@given(
    edges=EDGES,
    ops=OPS,
    seed=st.integers(0, 20),
    balance_name=BALANCES,
)
@settings(max_examples=60, deadline=None)
def test_recompute_mode_replays_identical_timeline(
    edges, ops, seed, balance_name
):
    incremental = _make_runner(Graph, edges, seed, balance_name, "incremental")
    recompute = _make_runner(Graph, edges, seed, balance_name, "recompute")
    _drive(incremental, ops)
    _drive(recompute, ops)  # cross-checks itself after every round
    assert list(incremental.timeline) == list(recompute.timeline)
    assert incremental.loads == recompute.loads
    assert incremental.state.cut_edges == recompute.state.cut_edges


@given(
    edges=EDGES,
    ops=OPS,
    seed=st.integers(0, 20),
)
@settings(max_examples=60, deadline=None)
def test_backends_stay_identical_under_interleaving(edges, ops, seed):
    dense = _make_runner(Graph, edges, seed, "vertex", "incremental")
    compact = _make_runner(CompactGraph, edges, seed, "vertex", "incremental")
    _drive(dense, ops)
    _drive(compact, ops)
    assert list(dense.timeline) == list(compact.timeline)
    assert dense.state.cut_edges == compact.state.cut_edges
    assert dense.state.sizes == compact.state.sizes
    compact.graph.validate()  # interning + CSR mirror survive the churn
