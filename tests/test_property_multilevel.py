"""Property-based tests for the multilevel (METIS-like) partitioner."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph
from repro.partitioning import HashPartitioner, MultilevelPartitioner
from repro.partitioning.multilevel.coarsen import coarsen_once
from repro.partitioning.multilevel.weighted import WeightedGraph
from repro.utils import make_rng

VERTEX_IDS = st.integers(min_value=0, max_value=25)
EDGE_SETS = st.sets(
    st.tuples(VERTEX_IDS, VERTEX_IDS).filter(lambda p: p[0] != p[1]),
    min_size=2,
    max_size=70,
)


@given(edges=EDGE_SETS, k=st.integers(1, 6), seed=st.integers(0, 10))
@settings(max_examples=60, deadline=None)
def test_kway_output_is_a_valid_partition(edges, k, seed):
    graph = Graph(edges=list(edges))
    state = MultilevelPartitioner(seed=seed).partition(graph, k)
    assert len(state) == graph.num_vertices
    assert sum(state.sizes) == graph.num_vertices
    assert state.cut_edges == state.recompute_cut_edges()
    state.validate()


@given(edges=EDGE_SETS, seed=st.integers(0, 10))
@settings(max_examples=50, deadline=None)
def test_coarsening_conserves_weight_and_cut_structure(edges, seed):
    graph = Graph(edges=list(edges))
    weighted = WeightedGraph.from_graph(graph)
    rng = make_rng(seed, "property-coarsen")
    level = coarsen_once(weighted, rng)
    # vertex weight conserved
    assert level.coarse.total_vertex_weight == weighted.total_vertex_weight
    # coarse never larger than fine
    assert level.coarse.num_vertices <= weighted.num_vertices
    # any coarse assignment's cut equals its projection's fine cut
    assignment_rng = make_rng(seed, "property-assign")
    coarse_assignment = {
        v: assignment_rng.randrange(2) for v in level.coarse.vertices()
    }
    fine_assignment = level.project(coarse_assignment)
    assert weighted.cut_weight(fine_assignment) == level.coarse.cut_weight(
        coarse_assignment
    )


@given(edges=EDGE_SETS, seed=st.integers(0, 5))
@settings(max_examples=30, deadline=None)
def test_multilevel_no_worse_than_hash_on_average_structure(edges, seed):
    # On arbitrary graphs the multilevel result must never be *dramatically*
    # worse than hash — and bookkeeping must hold regardless.
    graph = Graph(edges=list(edges))
    metis = MultilevelPartitioner(seed=seed).partition(graph, 3)
    hsh = HashPartitioner().partition(graph, 3)
    assert metis.cut_edges <= hsh.cut_edges + max(2, graph.num_edges // 4)
