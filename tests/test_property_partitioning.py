"""Property-based tests: partition-state and quota invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QuotaTable
from repro.graph import Graph
from repro.partitioning import PartitionState
from repro.utils import make_rng

VERTEX_IDS = st.integers(min_value=0, max_value=24)
EDGES = st.sets(
    st.tuples(VERTEX_IDS, VERTEX_IDS).filter(lambda p: p[0] != p[1]),
    min_size=1,
    max_size=60,
)


@given(
    edges=EDGES,
    k=st.integers(min_value=1, max_value=6),
    ops=st.lists(
        st.tuples(st.integers(0, 24), st.integers(0, 5)), max_size=80
    ),
    seed=st.integers(0, 10),
)
@settings(max_examples=150, deadline=None)
def test_cut_bookkeeping_equals_recompute_under_arbitrary_moves(
    edges, k, ops, seed
):
    graph = Graph(edges=list(edges))
    state = PartitionState(graph, k)
    rng = make_rng(seed, "property")
    vertices = list(graph.vertices())
    for v in vertices:
        state.assign(v, rng.randrange(k))
    for vid, pid in ops:
        if vid in state and pid < k:
            state.move(vid, pid)
    assert state.cut_edges == state.recompute_cut_edges()
    state.validate()


@given(
    edges=EDGES,
    k=st.integers(min_value=2, max_value=5),
    removals=st.lists(VERTEX_IDS, max_size=20),
    seed=st.integers(0, 10),
)
@settings(max_examples=100, deadline=None)
def test_cut_bookkeeping_survives_vertex_removal(edges, k, removals, seed):
    graph = Graph(edges=list(edges))
    state = PartitionState(graph, k)
    rng = make_rng(seed, "property-removal")
    for v in graph.vertices():
        state.assign(v, rng.randrange(k))
    for victim in removals:
        if victim in graph:
            state.remove_vertex(victim)
            graph.remove_vertex(victim)
    assert state.cut_edges == state.recompute_cut_edges()
    state.validate()


@given(
    edges=EDGES,
    k=st.integers(min_value=2, max_value=5),
    edge_ops=st.lists(
        st.tuples(
            st.booleans(),
            st.tuples(VERTEX_IDS, VERTEX_IDS).filter(lambda p: p[0] != p[1]),
        ),
        max_size=40,
    ),
    seed=st.integers(0, 10),
)
@settings(max_examples=100, deadline=None)
def test_cut_bookkeeping_survives_edge_churn(edges, k, edge_ops, seed):
    graph = Graph(edges=list(edges))
    state = PartitionState(graph, k)
    rng = make_rng(seed, "property-edges")
    for v in graph.vertices():
        state.assign(v, rng.randrange(k))
    for is_add, (u, v) in edge_ops:
        if is_add:
            # only report edges between already-assigned vertices; new
            # endpoints would need placement first (the runner's job)
            if u in state and v in state and graph.add_edge(u, v):
                state.on_edge_added(u, v)
        else:
            if graph.remove_edge(u, v):
                state.on_edge_removed(u, v)
    assert state.cut_edges == state.recompute_cut_edges()


@given(
    remaining=st.lists(
        st.integers(min_value=-5, max_value=30), min_size=2, max_size=8
    ),
    schedule=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=200
    ),
)
@settings(max_examples=150, deadline=None)
def test_quota_admissions_never_exceed_destination_capacity(
    remaining, schedule
):
    k = len(remaining)
    table = QuotaTable(remaining, num_partitions=k)
    admitted = [0] * k
    for source, destination in schedule:
        if source >= k or destination >= k or source == destination:
            continue
        if table.try_consume(source, destination):
            admitted[destination] += 1
    for pid in range(k):
        assert admitted[pid] <= max(remaining[pid], 0)
