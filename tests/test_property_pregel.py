"""Property-based tests over the Pregel system.

The central guarantee of the deferred-migration protocol (Fig. 3) is that
**no message is ever lost or mis-addressed while vertices migrate**.  We
verify it end-to-end with a counting program: every vertex sends one token
to each neighbour every superstep, so in a continuous run each vertex must
receive exactly ``degree`` tokens per superstep — regardless of how many
migrations the background partitioner performs and regardless of graph
shape, seed, worker count or willingness.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph
from repro.pregel import PregelConfig, PregelSystem
from repro.pregel.vertex import VertexProgram

VERTEX_IDS = st.integers(min_value=0, max_value=18)
EDGE_SETS = st.sets(
    st.tuples(VERTEX_IDS, VERTEX_IDS).filter(lambda p: p[0] != p[1]),
    min_size=3,
    max_size=50,
)


class TokenCounter(VertexProgram):
    """Sends 1 to every neighbour; value = tokens received last superstep."""

    def initial_value(self, vertex_id, graph):
        return 0

    def compute(self, ctx, messages):
        ctx.value = sum(messages)
        ctx.send_to_neighbors(1)


@given(
    edges=EDGE_SETS,
    num_workers=st.integers(min_value=1, max_value=6),
    seed=st.integers(0, 30),
    willingness=st.floats(min_value=0.1, max_value=1.0),
)
@settings(max_examples=50, deadline=None)
def test_no_message_lost_under_migration(edges, num_workers, seed, willingness):
    graph = Graph(edges=list(edges))
    system = PregelSystem(
        graph,
        TokenCounter(),
        PregelConfig(
            num_workers=num_workers,
            adaptive=True,
            seed=seed,
            willingness=willingness,
        ),
    )
    reports = system.run(8)
    # From superstep 2 on, every vertex must have received exactly its
    # degree in tokens, no matter what migrated in between.
    for v in graph.vertices():
        assert system.values[v] == graph.degree(v), v
    # Traffic conservation: delivered messages per superstep equal one per
    # directed edge (2|E|), migrations notwithstanding.
    for report in reports[1:]:
        assert report.traffic.total_messages == 2 * graph.num_edges
    system.state.validate()


@given(
    edges=EDGE_SETS,
    seed=st.integers(0, 30),
)
@settings(max_examples=40, deadline=None)
def test_partition_state_consistent_after_system_run(edges, seed):
    graph = Graph(edges=list(edges))
    system = PregelSystem(
        graph,
        TokenCounter(),
        PregelConfig(num_workers=4, adaptive=True, seed=seed),
    )
    system.run(10)
    state = system.state
    assert len(state) == graph.num_vertices
    assert state.cut_edges == state.recompute_cut_edges()
    # loads mirror sizes under the default vertex-balance policy
    assert system.metrics.loads == [float(s) for s in state.sizes]


@given(
    edges=EDGE_SETS,
    seed=st.integers(0, 30),
    batch=st.lists(
        st.tuples(st.integers(50, 60), VERTEX_IDS).filter(
            lambda p: p[0] != p[1]
        ),
        min_size=1,
        max_size=12,
    ),
)
@settings(max_examples=40, deadline=None)
def test_mutations_preserve_message_accounting(edges, seed, batch):
    from repro.graph import AddEdge

    graph = Graph(edges=list(edges))
    system = PregelSystem(
        graph,
        TokenCounter(),
        PregelConfig(num_workers=3, adaptive=True, seed=seed),
    )
    system.run(3)
    system.inject_events([AddEdge(u, v) for u, v in batch])
    system.run(4)
    # after two clean supersteps past the mutation, counts settle again
    for v in graph.vertices():
        assert system.values[v] == graph.degree(v), v
    assert system.state.cut_edges == system.state.recompute_cut_edges()
