"""Property-based tests over the adaptive runner: invariants must hold for
any graph shape, willingness, partition count and mutation batch."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdaptiveConfig, AdaptiveRunner, VertexBalance
from repro.graph import AddEdge, AddVertex, RemoveVertex
from repro.partitioning import HashPartitioner, balanced_capacities

VERTEX_IDS = st.integers(min_value=0, max_value=30)
EDGE_SETS = st.sets(
    st.tuples(VERTEX_IDS, VERTEX_IDS).filter(lambda p: p[0] != p[1]),
    min_size=2,
    max_size=80,
)


def build_runner(edges, k, willingness, seed, slack=1.3):
    from repro.graph import Graph

    graph = Graph(edges=list(edges))
    caps = balanced_capacities(graph.num_vertices, k, slack)
    state = HashPartitioner().partition(graph, k, list(caps))
    config = AdaptiveConfig(
        willingness=willingness,
        seed=seed,
        quiet_window=5,
        balance=VertexBalance(slack=slack),
    )
    return graph, state, AdaptiveRunner(graph, state, config)


@given(
    edges=EDGE_SETS,
    k=st.integers(min_value=2, max_value=6),
    willingness=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(0, 20),
)
@settings(max_examples=60, deadline=None)
def test_runner_invariants_on_static_graphs(edges, k, willingness, seed):
    graph, state, runner = build_runner(edges, k, willingness, seed)
    initial_cut = state.cut_edges
    for _ in range(12):
        stats = runner.step()
        # every vertex stays assigned to exactly one partition
        assert len(state) == graph.num_vertices
        assert sum(state.sizes) == graph.num_vertices
        # counted stats are consistent
        assert 0 <= stats.migrations <= stats.wanted_migrations
        assert stats.blocked_migrations >= 0
    # bookkeeping is exact and quality never degrades on a static graph
    assert state.cut_edges == state.recompute_cut_edges()
    assert state.cut_edges <= initial_cut
    state.validate()


@given(
    edges=EDGE_SETS,
    k=st.integers(min_value=2, max_value=5),
    seed=st.integers(0, 20),
    batch=st.lists(
        st.one_of(
            st.builds(AddVertex, st.integers(100, 120)),
            st.tuples(st.integers(100, 120), VERTEX_IDS).map(
                lambda p: AddEdge(*p)
            ),
            st.builds(RemoveVertex, VERTEX_IDS),
        ),
        max_size=25,
    ),
)
@settings(max_examples=60, deadline=None)
def test_runner_invariants_under_mutation_batches(edges, k, seed, batch):
    graph, state, runner = build_runner(edges, k, 0.5, seed)
    for _ in range(5):
        runner.step()
    runner.apply_events(batch)
    for _ in range(8):
        runner.step()
    assert len(state) == graph.num_vertices
    assert state.cut_edges == state.recompute_cut_edges()
    assert runner.loads == [float(s) for s in state.sizes]
    state.validate()
    graph.validate()


@given(
    edges=EDGE_SETS,
    seed=st.integers(0, 20),
)
@settings(max_examples=40, deadline=None)
def test_convergence_reachable_with_paper_parameters(edges, seed):
    # Strict post-convergence stability is *not* a property of the paper's
    # algorithm: at s = 1 symmetric pairs chase each other forever (§2.3,
    # see test_core_runner.TestNeighbourChasing), and at s < 1 a quiet
    # window can close while a wanting vertex keeps failing its coin-flip
    # (probability (1−s)^window — the reason the paper uses window 30).
    # What must hold for any graph: the paper's parameters (s = 0.5,
    # window 30) reach convergence, with exact bookkeeping throughout.
    from repro.core import AdaptiveConfig, AdaptiveRunner, VertexBalance
    from repro.graph import Graph
    from repro.partitioning import HashPartitioner, balanced_capacities

    graph = Graph(edges=list(edges))
    caps = balanced_capacities(graph.num_vertices, 3, 1.3)
    state = HashPartitioner().partition(graph, 3, list(caps))
    config = AdaptiveConfig(
        willingness=0.5, seed=seed, quiet_window=30,
        balance=VertexBalance(slack=1.3),
    )
    runner = AdaptiveRunner(graph, state, config)
    runner.run_until_convergence(max_iterations=2000)
    assert runner.converged
    assert state.cut_edges == state.recompute_cut_edges()
    state.validate()
