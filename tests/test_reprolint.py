"""The reprolint analyzer: every checker, the pragma engine, the CLI.

Each checker is exercised against a fixture subtree under
``tests/reprolint_fixtures/`` that mirrors the repo layout (so the
default config's path scoping applies verbatim), with the expected
findings asserted by (code, file, line).  The repo-clean test is the
local twin of the CI gate: ``src/repro`` must lint clean, and a seeded
violation must trip the gate.
"""

import dataclasses
import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from tools.reprolint import DEFAULT_CONFIG, lint_paths
from tools.reprolint.core import (
    MALFORMED_PRAGMA,
    PARSE_ERROR,
    UNUSED_PRAGMA,
)

FIXTURES = Path(__file__).parent / "reprolint_fixtures"
REPO = Path(__file__).resolve().parents[1]


def lint(subpath, config=DEFAULT_CONFIG):
    return lint_paths([FIXTURES / subpath], config)


def sites(findings, code=None):
    """Set of (code, filename, line) triples, optionally one code only."""
    return {
        (f.code, Path(f.path).name, f.line)
        for f in findings
        if code is None or f.code == code
    }


# ----------------------------------------------------------------------
# The seven checkers, against their fixture subtrees
# ----------------------------------------------------------------------


class TestDet001:
    def test_flags_unordered_iteration_sites(self):
        findings = lint("det001")
        assert sites(findings) == {
            ("DET001", "bad_iteration.py", 10),
            ("DET001", "bad_iteration.py", 12),
            ("DET001", "bad_iteration.py", 13),
        }

    def test_wrapped_iteration_is_clean(self):
        findings = lint("det001/repro/pregel/good_iteration.py")
        assert findings == []

    def test_outside_critical_packages_is_out_of_scope(self, tmp_path):
        target = tmp_path / "repro" / "scripts" / "loose.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            (FIXTURES / "det001/repro/pregel/bad_iteration.py").read_text()
        )
        assert lint_paths([tmp_path], DEFAULT_CONFIG) == []


class TestDet002:
    def test_flags_module_rng_calls(self):
        findings = lint("det002")
        assert sites(findings) == {
            ("DET002", "chooser.py", 11),
            ("DET002", "chooser.py", 12),
            ("DET002", "chooser.py", 13),
            ("DET002", "chooser.py", 14),
        }

    def test_rng_module_itself_is_exempt(self):
        assert lint("det002/repro/utils/rng.py") == []


class TestDet003:
    def test_flags_wall_clock_reads(self):
        findings = lint("det003")
        assert sites(findings) == {
            ("DET003", "clock_user.py", 7),
            ("DET003", "clock_user.py", 15),
            ("DET003", "clock_user.py", 19),
            ("DET003", "clock_user.py", 20),
        }

    def test_allowlisted_site_is_clean_and_stale_entry_is_flagged(self):
        config = dataclasses.replace(
            DEFAULT_CONFIG,
            wallclock_allowlist={
                "repro/pregel/clock_user.py": frozenset(
                    {"Meter.observe", "Meter.vanished"}
                )
            },
        )
        findings = lint("det003", config)
        assert sites(findings, "DET003") == {
            ("DET003", "clock_user.py", 7),
            ("DET003", "clock_user.py", 19),
            ("DET003", "clock_user.py", 20),
            ("DET003", "clock_user.py", 1),  # the stale-entry finding
        }
        stale = [f for f in findings if "stale" in f.message]
        assert len(stale) == 1
        assert "Meter.vanished" in stale[0].message


class TestWire001:
    def test_codec_coverage_gaps(self):
        findings = lint("wire001")
        messages = sorted(f.message for f in findings)
        assert len(findings) == 5
        assert any(
            "ShardTask.extra is never read by _encode_task" in m
            for m in messages
        )
        assert any(
            "ShardTask.inbox is not passed" in m for m in messages
        )
        assert any(
            "ShardTask.extra is not passed" in m for m in messages
        )
        assert any(
            "ShardPatch has no entry in _ENCODERS" in m for m in messages
        )
        assert any(
            "DecisionContext" in m and "pickle fallback" in m
            for m in messages
        )
        assert {f.code for f in findings} == {"WIRE001"}


class TestCap001:
    def test_capability_honesty(self):
        findings = lint("cap001")
        assert sites(findings) == {
            ("CAP001", "executors.py", 48),  # LyingPipelined claim
            ("CAP001", "executors.py", 56),  # SilentStreamer override
            ("CAP001", "executors.py", 64),  # LyingRemote claim
        }
        by_line = {f.line: f.message for f in findings}
        assert "LyingPipelined" in by_line[48]
        assert "step_stream" in by_line[48]
        assert "supports_pipelining=False" in by_line[56]
        assert "_transport_recv" in by_line[64]


class TestObs001:
    def test_unregistered_literal_and_stale_entries(self):
        findings = lint("obs001")
        assert sites(findings) == {
            ("OBS001", "emitter.py", 10),  # unregistered span literal
            ("OBS001", "names.py", 3),  # stale SPAN_NAMES entry
            ("OBS001", "names.py", 5),  # stale METRIC_NAMES entry
        }
        stale = sorted(
            f.message for f in findings if "used nowhere" in f.message
        )
        assert "'never-emitted'" in stale[0]
        assert "'orphan.metric'" in stale[1]

    def test_usages_without_a_registry_are_flagged(self):
        assert sites(lint("obs001/repro/pregel")) == {
            ("OBS001", "emitter.py", 6)
        }


class TestKer001:
    def test_loops_in_kernels_are_flagged(self):
        findings = lint("ker001")
        assert sites(findings) == {
            ("KER001", "kernels.py", 29),  # list comprehension
            ("KER001", "kernels.py", 30),  # dict comprehension
            ("KER001", "kernels.py", 31),  # for loop
            ("KER001", "kernels.py", 33),  # while loop
            ("KER001", "kernels.py", 45),  # genexp in a nested helper
        }
        for finding in findings:
            assert "compute_batch" in finding.message

    def test_scalar_reference_loops_stay_legal(self):
        """Only ``compute_batch`` bodies are scanned; ``compute`` loops,
        vectorised kernels and the pragma'd bounded loop are clean."""
        findings = lint("ker001")
        assert all(f.line not in (19, 20, 56) for f in findings)

    def test_outside_kernel_packages_is_out_of_scope(self, tmp_path):
        target = tmp_path / "repro" / "analysis" / "loose.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            (FIXTURES / "ker001/repro/apps/kernels.py").read_text()
        )
        findings = lint_paths([tmp_path], DEFAULT_CONFIG)
        # the bounded-loop pragma goes stale out of scope (PRAGMA002);
        # what matters is that no kernel-loop finding fires
        assert not any(f.code == "KER001" for f in findings)


# ----------------------------------------------------------------------
# The pragma engine
# ----------------------------------------------------------------------


class TestPragmas:
    def test_explained_suppressions_work_and_stale_ones_report(self):
        findings = lint("pragmas/repro/pregel/suppressed.py")
        assert sites(findings) == {(UNUSED_PRAGMA, "suppressed.py", 17)}

    def test_malformed_pragmas_do_not_suppress(self):
        findings = lint("pragmas/repro/pregel/malformed.py")
        assert sites(findings) == {
            ("DET001", "malformed.py", 8),
            (MALFORMED_PRAGMA, "malformed.py", 8),  # reason missing
            (MALFORMED_PRAGMA, "malformed.py", 10),  # unknown directive
            ("DET001", "malformed.py", 11),
        }

    def test_pragma_reason_is_mandatory_message(self):
        findings = lint("pragmas/repro/pregel/malformed.py")
        reasonless = [
            f
            for f in findings
            if f.code == MALFORMED_PRAGMA and f.line == 8
        ]
        assert "needs a reason" in reasonless[0].message

    def test_unparsable_file_is_a_parse_finding(self, tmp_path):
        bad = tmp_path / "repro" / "pregel" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        findings = lint_paths([tmp_path], DEFAULT_CONFIG)
        assert [f.code for f in findings] == [PARSE_ERROR]


# ----------------------------------------------------------------------
# The repo gate: src/repro lints clean, and seeded violations trip it
# ----------------------------------------------------------------------


class TestRepoGate:
    def test_src_repro_is_clean(self):
        assert lint_paths([REPO / "src" / "repro"], DEFAULT_CONFIG) == []

    def test_seeded_det001_violation_trips_the_gate(self, tmp_path):
        seeded = tmp_path / "repro" / "pregel" / "seeded.py"
        seeded.parent.mkdir(parents=True)
        seeded.write_text(
            '"""Seeded violation."""\n\n'
            "halted = {3, 1, 2}\n"
            "for v in halted:\n"
            "    print(v)\n"
        )
        findings = lint_paths([tmp_path], DEFAULT_CONFIG)
        assert [f.code for f in findings] == ["DET001"]

    def test_seeded_cap001_violation_trips_the_gate(self, tmp_path):
        seeded = tmp_path / "repro" / "cluster" / "seeded.py"
        seeded.parent.mkdir(parents=True)
        seeded.write_text(
            '"""Seeded violation."""\n\n'
            "class ExecutorCapabilities:\n"
            '    """Stub."""\n\n'
            "    def __init__(self, supports_pipelining=False):\n"
            '        """Stub."""\n'
            "        self.supports_pipelining = supports_pipelining\n\n\n"
            "class Liar:\n"
            '    """Claims pipelining with no step_stream at all."""\n\n'
            "    capabilities = ExecutorCapabilities("
            "supports_pipelining=True)\n"
        )
        findings = lint_paths([tmp_path], DEFAULT_CONFIG)
        assert [f.code for f in findings] == ["CAP001"]

    def test_seeded_ker001_violation_trips_the_gate(self, tmp_path):
        seeded = tmp_path / "repro" / "apps" / "seeded.py"
        seeded.parent.mkdir(parents=True)
        seeded.write_text(
            '"""Seeded violation."""\n\n\n'
            "class Kernel:\n"
            '    """A kernel that loops over its rows."""\n\n'
            "    def compute_batch(self, block):\n"
            '        """Per-vertex loop: the thing KER001 exists for."""\n'
            "        return [sum(box) for box in block.boxes]\n"
        )
        findings = lint_paths([tmp_path], DEFAULT_CONFIG)
        assert [f.code for f in findings] == ["KER001"]


# ----------------------------------------------------------------------
# The CLI
# ----------------------------------------------------------------------


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "tools.reprolint", *args],
        cwd=REPO,
        capture_output=True,
        text=True,
    )


class TestCli:
    def test_json_report_and_exit_one_on_findings(self):
        proc = run_cli("tests/reprolint_fixtures/det001", "--json")
        assert proc.returncode == 1
        report = json.loads(proc.stdout)
        assert report["version"] == 1
        assert report["checked"] == 2
        assert report["counts"] == {"DET001": 3}
        assert all(
            f["code"] == "DET001" for f in report["findings"]
        )

    def test_clean_tree_exits_zero(self):
        proc = run_cli(
            "tests/reprolint_fixtures/det001/repro/pregel/"
            "good_iteration.py"
        )
        assert proc.returncode == 0
        assert "no finding(s)" in proc.stdout

    def test_missing_path_exits_two(self):
        proc = run_cli("no/such/path")
        assert proc.returncode == 2
        assert "no such file" in proc.stderr

    def test_select_narrows_the_rule_set(self):
        proc = run_cli("tests/reprolint_fixtures/det002", "--select", "DET001")
        assert proc.returncode == 0
        bogus = run_cli("src/repro", "--select", "NOPE999")
        assert bogus.returncode == 2

    def test_human_output_is_path_line_col_code(self):
        proc = run_cli("tests/reprolint_fixtures/det001")
        first = proc.stdout.splitlines()[0]
        assert first.startswith(
            "tests/reprolint_fixtures/det001/repro/pregel/"
            "bad_iteration.py:10:"
        )
        assert " DET001 " in first


# ----------------------------------------------------------------------
# The strict-typing pass (runs only where mypy is installed, e.g. CI)
# ----------------------------------------------------------------------


@pytest.mark.skipif(
    shutil.which("mypy") is None, reason="mypy not installed"
)
def test_mypy_strict_pass_is_clean():
    proc = subprocess.run(
        [shutil.which("mypy"), "--config-file", "mypy.ini"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
