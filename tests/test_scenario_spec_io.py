"""Scenario composition, file-loaded specs and the richer round records."""

import json
import sys

import pytest

from repro.scenarios import (
    ChurnSpec,
    GraphSpec,
    Scenario,
    get_scenario,
    load_scenario,
    play_scenario,
    scenario_from_dict,
)

from repro.scenarios import io as scenario_io

# TOML parses via tomllib (3.11+) or the tomli backport (3.10 dev extra);
# gate on what the loader actually resolved, not on the stdlib module.
HAVE_TOML = scenario_io._toml is not None


def _composed_scenario(**overrides):
    fields = dict(
        name="composed",
        description="growth with a flash crowd on top",
        graph=GraphSpec("mesh", {"nx": 4}),
        churn=(
            ChurnSpec("growth", {"num_vertices": 16, "duration": 8.0}),
            ChurnSpec(
                "flash-crowd",
                {"num_fans": 10, "at": 4.0, "duration": 2.0},
                seed_offset=1,
            ),
        ),
        window=2.0,
        num_partitions=3,
        settle_iterations=40,
        cooldown_rounds=4,
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestComposition:
    def test_single_churn_normalises_to_tuple(self):
        scenario = get_scenario("mesh-growth")
        assert isinstance(scenario.churn, tuple)
        assert len(scenario.churn) == 1

    def test_invalid_churn_rejected(self):
        with pytest.raises(TypeError, match="churn must be"):
            _composed_scenario(churn=())
        with pytest.raises(TypeError, match="churn must be"):
            _composed_scenario(churn=("growth",))

    def test_composed_stream_is_the_merge_of_its_parts(self):
        scenario = _composed_scenario()
        graph = scenario.build_graph()
        merged = scenario.build_stream(graph)
        part_a = scenario.churn[0].build(graph, seed=scenario.seed)
        part_b = scenario.churn[1].build(graph, seed=scenario.seed)
        assert len(merged) == len(part_a) + len(part_b)
        expected = part_a.merged_with(part_b)
        assert [(te.time, te.event) for te in merged] == [
            (te.time, te.event) for te in expected
        ]

    def test_seed_offset_decorrelates_equal_parts(self):
        scenario = _composed_scenario(
            churn=(
                ChurnSpec("growth", {"num_vertices": 12, "duration": 8.0}),
                ChurnSpec(
                    "growth",
                    {"num_vertices": 12, "duration": 8.0, "id_prefix": "g2"},
                    seed_offset=1,
                ),
            )
        )
        graph = scenario.build_graph()
        a, b = (
            spec.build(graph, seed=scenario.seed) for spec in scenario.churn
        )
        assert [te.time for te in a] != [te.time for te in b]

    def test_composed_scenario_replays_deterministically(self):
        scenario = _composed_scenario()
        first = play_scenario(scenario).digest()
        second = play_scenario(scenario, backend="compact").digest()
        assert first == second
        assert sum(r["changed"] for r in first["rounds"]) > 0

    def test_catalog_composed_scenario_runs(self):
        scenario = get_scenario("mesh-growth-flash")
        result = play_scenario(scenario, max_rounds=6)
        # max_rounds truncates the stream; cooldown rounds still run.
        assert len(result.rounds) == 6 + scenario.cooldown_rounds
        assert result.rounds[-1].num_vertices > 216  # both parts landed


class TestRoundRecordFields:
    def test_round_records_carry_health_columns(self):
        result = play_scenario(get_scenario("mesh-growth"), max_rounds=4)
        for record in result.rounds:
            assert record.imbalance >= 1.0
            assert record.quiet_iterations >= 0
            assert isinstance(record.converged, bool)
            assert record.superstep_cost >= 0.0
        assert any(r.superstep_cost > 0 for r in result.rounds)

    def test_cooldown_reaches_convergence_flag(self):
        result = play_scenario(get_scenario("mesh-growth"))
        assert result.rounds[-1].converged
        assert (
            result.rounds[-1].quiet_iterations
            >= get_scenario("mesh-growth").quiet_window
        )

    def test_static_run_has_zero_cost_and_no_convergence_claim(self):
        result = play_scenario(
            get_scenario("mesh-growth"), adaptive=False, max_rounds=4
        )
        assert all(r.superstep_cost == 0.0 for r in result.rounds)
        assert all(not r.converged for r in result.rounds)

    def test_digest_round_trips_with_new_fields(self):
        digest = play_scenario(
            get_scenario("grid-rewire"), max_rounds=4
        ).digest()
        assert json.loads(json.dumps(digest)) == digest
        for row in digest["rounds"]:
            for key in (
                "imbalance",
                "quiet_iterations",
                "converged",
                "superstep_cost",
            ):
                assert key in row


SPEC_DOC = {
    "name": "file-scenario",
    "description": "loaded from disk",
    "graph": {"kind": "mesh", "params": {"nx": 4}},
    "churn": [
        {"kind": "growth", "params": {"num_vertices": 12, "duration": 8.0}},
        {
            "kind": "flash-crowd",
            "params": {"num_fans": 8, "at": 4.0},
            "seed_offset": 2,
        },
    ],
    "window": 2.0,
    "num_partitions": 3,
    "settle_iterations": 30,
}


class TestSpecLoading:
    def test_from_dict_builds_equivalent_scenario(self):
        scenario = scenario_from_dict(SPEC_DOC)
        assert scenario.name == "file-scenario"
        assert scenario.num_partitions == 3
        assert [c.kind for c in scenario.churn] == ["growth", "flash-crowd"]
        assert scenario.churn[1].seed_offset == 2

    def test_json_spec_loads_and_plays(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(SPEC_DOC), encoding="utf-8")
        scenario = load_scenario(path)
        result = play_scenario(scenario, max_rounds=3)
        assert len(result.rounds) == 3 + scenario.cooldown_rounds
        # File-loaded and dict-built scenarios are the same frozen record.
        assert scenario == scenario_from_dict(SPEC_DOC)

    @pytest.mark.skipif(
        not HAVE_TOML, reason="needs tomllib (3.11+) or tomli installed"
    )
    def test_toml_spec_loads(self, tmp_path):
        toml_doc = """
name = "toml-scenario"
description = "loaded from TOML"
window = 2.0
num_partitions = 3

[graph]
kind = "mesh"
[graph.params]
nx = 4

[[churn]]
kind = "growth"
[churn.params]
num_vertices = 12
duration = 8.0
"""
        path = tmp_path / "scenario.toml"
        path.write_text(toml_doc, encoding="utf-8")
        scenario = load_scenario(path)
        assert scenario.name == "toml-scenario"
        assert scenario.churn[0].kind == "growth"

    @pytest.mark.skipif(
        HAVE_TOML, reason="exercises the no-TOML-parser gate"
    )
    def test_toml_without_any_parser_is_a_clear_error(self, tmp_path):
        path = tmp_path / "scenario.toml"
        path.write_text("name = 'x'\n", encoding="utf-8")
        with pytest.raises(ValueError, match="tomllib.*tomli"):
            load_scenario(path)

    def test_toml_gate_message_names_both_parsers(self, tmp_path,
                                                  monkeypatch):
        # Simulate 3.10-without-tomli regardless of the running
        # interpreter: the error must point at both escape hatches.
        monkeypatch.setattr(scenario_io, "_toml", None)
        path = tmp_path / "scenario.toml"
        path.write_text("name = 'x'\n", encoding="utf-8")
        with pytest.raises(ValueError, match="tomli"):
            load_scenario(path)

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "scenario.yaml"
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(ValueError, match="use .json or .toml"):
            load_scenario(path)

    @pytest.mark.parametrize(
        "mutation, message",
        [
            (lambda d: d.pop("name"), "lacks"),
            (lambda d: d.pop("churn"), "lacks"),
            (lambda d: d.update(tempo=3), "unknown scenario keys"),
            (lambda d: d.update(graph={"params": {}}), "'graph' must be"),
            (
                lambda d: d.update(graph={"kind": "mesh", "parms": {}}),
                "unknown graph keys",
            ),
            (
                lambda d: d.update(churn=[{"params": {}}]),
                "churn entry must be",
            ),
            (
                lambda d: d.update(
                    churn=[{"kind": "growth", "tempo": 1}]
                ),
                "unknown churn keys",
            ),
        ],
    )
    def test_malformed_documents_rejected(self, mutation, message):
        doc = json.loads(json.dumps(SPEC_DOC))
        mutation(doc)
        with pytest.raises(ValueError, match=message):
            scenario_from_dict(doc)


class TestCliSpec:
    def test_cli_spec_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(SPEC_DOC), encoding="utf-8")
        code = main(
            ["scenario", "--spec", str(path), "--max-rounds", "3"],
            out=sys.stdout,
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "file-scenario" in output
        assert "imbal" in output  # the richer table columns

    def test_cli_rejects_conflicting_or_dangling_flags(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(SPEC_DOC), encoding="utf-8")
        # name + --spec conflict
        assert main(
            ["scenario", "mesh-growth", "--spec", str(path)], out=sys.stdout
        ) == 2
        # --workers without a parallel executor
        assert main(
            ["scenario", "mesh-growth", "--engine", "pregel", "--workers", "4"],
            out=sys.stdout,
        ) == 2
        # --executor outside the pregel engine
        assert main(
            ["scenario", "mesh-growth", "--executor", "process"],
            out=sys.stdout,
        ) == 2
        capsys.readouterr()

    def test_cli_pregel_engine(self, capsys):
        from repro.cli import main

        code = main(
            [
                "scenario",
                "mesh-growth",
                "--engine",
                "pregel",
                "--max-rounds",
                "3",
            ],
            out=sys.stdout,
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "pregel (inline executor)" in output
