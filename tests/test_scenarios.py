"""Unit tests for the dynamic-scenario subsystem (spec, churn, engine, CLI)."""

import json

import pytest

from repro.cli import main
from repro.graph import AddEdge, AddVertex, EventStream, Graph, RemoveVertex
from repro.scenarios import (
    CHURNS,
    SCENARIOS,
    ChurnSpec,
    GraphSpec,
    Scenario,
    get_scenario,
    make_churn,
    play_scenario,
    scaled,
    scenario_names,
)
from repro.scenarios.churn import (
    decay_churn,
    flash_crowd_churn,
    growth_churn,
    rewire_churn,
    rolling_window_churn,
)


@pytest.fixture
def base_graph():
    return Graph([(i, i + 1) for i in range(29)] + [(29, 0)])  # 30-cycle


class TestSpecs:
    def test_unknown_graph_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown graph kind"):
            GraphSpec("no-such-generator")

    def test_unknown_churn_kind_rejected(self, base_graph):
        with pytest.raises(ValueError, match="unknown churn kind"):
            make_churn("no-such-churn", base_graph)

    def test_graph_spec_builds_on_backend(self):
        spec = GraphSpec("grid", {"nx": 4, "ny": 4})
        compact = spec.build("compact")
        assert hasattr(compact, "ensure_csr")
        assert compact.num_vertices == 16

    def test_scenario_validation(self):
        graph = GraphSpec("grid", {"nx": 4})
        churn = ChurnSpec("decay", {"fraction": 0.1})
        with pytest.raises(ValueError, match="regime"):
            Scenario("x", "", graph, churn, regime="sometimes")
        with pytest.raises(ValueError, match="window"):
            Scenario("x", "", graph, churn, window=0.0)
        with pytest.raises(ValueError, match="batch_size"):
            Scenario("x", "", graph, churn, regime="buffered", batch_size=0)

    def test_scaled_overrides(self):
        scenario = get_scenario("mesh-growth")
        bigger = scaled(scenario, seed=9, window=4.0)
        assert (bigger.seed, bigger.window) == (9, 4.0)
        assert bigger.name == scenario.name
        assert scenario.seed == 0  # original untouched


class TestRegistry:
    def test_catalog_covers_every_churn_regime(self):
        used = {part.kind for s in SCENARIOS.values() for part in s.churn}
        assert used == set(CHURNS), "every churn factory needs a catalog entry"

    def test_names_sorted_and_resolvable(self):
        names = scenario_names()
        assert names == sorted(names) and names
        for name in names:
            assert get_scenario(name).name == name

    def test_unknown_scenario_lists_catalog(self):
        with pytest.raises(ValueError, match="mesh-growth"):
            get_scenario("nope")


class TestChurnFactories:
    def test_growth_emits_vertex_then_edges_per_arrival(self, base_graph):
        stream = growth_churn(base_graph, num_vertices=5, duration=10.0)
        per_time = {}
        for te in stream:
            per_time.setdefault(te.time, []).append(te.event)
        for events in per_time.values():
            assert isinstance(events[0], AddVertex)
            assert all(isinstance(e, AddEdge) for e in events[1:])
        assert len(per_time) == 5

    def test_decay_removes_requested_fraction(self, base_graph):
        stream = decay_churn(base_graph, fraction=0.5, duration=8.0)
        assert len(stream) == 15
        assert all(isinstance(te.event, RemoveVertex) for te in stream)
        victims = {te.event.vertex for te in stream}
        assert victims <= set(base_graph.vertices())

    def test_rewire_keeps_size_stable(self, base_graph):
        stream = rewire_churn(base_graph, num_rewires=10, duration=5.0)
        working = base_graph.copy()
        stream.replay_into(working)
        assert working.num_vertices == base_graph.num_vertices
        assert abs(working.num_edges - base_graph.num_edges) <= 10

    def test_flash_crowd_targets_max_degree_hub(self):
        graph = Graph([(0, i) for i in range(1, 8)] + [(1, 2)])
        stream = flash_crowd_churn(graph, num_fans=6, at=1.0, duration=1.0)
        hub_edges = [
            te.event
            for te in stream
            if isinstance(te.event, AddEdge) and te.event.v == 0
        ]
        assert len(hub_edges) == 6  # every fan wires to vertex 0

    def test_rolling_window_expires_every_arrival(self, base_graph):
        stream = rolling_window_churn(
            base_graph, rate=5.0, duration=10.0, horizon=3.0
        )
        adds = [te for te in stream if isinstance(te.event, AddEdge)]
        removes = [te for te in stream if not isinstance(te.event, AddEdge)]
        assert len(adds) == len(removes) and adds
        # Replaying the whole stream (arrivals + expiries) restores topology.
        working = base_graph.copy()
        stream.replay_into(working)
        assert working.num_edges == base_graph.num_edges

    def test_factories_are_seed_deterministic(self, base_graph):
        for kind in ("growth", "decay", "rewire", "rolling-window"):
            a = make_churn(kind, base_graph, seed=3)
            b = make_churn(kind, base_graph, seed=3)
            assert [(te.time, te.event) for te in a] == [
                (te.time, te.event) for te in b
            ], kind

    def test_streams_are_time_sorted(self, base_graph):
        for kind in CHURNS:
            stream = make_churn(kind, base_graph, seed=1)
            assert isinstance(stream, EventStream)
            times = [te.time for te in stream]
            assert times == sorted(times), kind


class TestEngine:
    def test_adaptive_improves_on_static(self):
        scenario = get_scenario("grid-rewire")
        adaptive = play_scenario(scenario)
        static = play_scenario(scenario, adaptive=False)
        # Identical event application on both clusters...
        assert adaptive.series("changed")[: len(static)] == static.series("changed")
        assert static.total_migrations() == 0
        # ...but only the adaptive side recovers cut quality.
        assert adaptive.final_cut_ratio() < static.final_cut_ratio()

    def test_static_run_has_no_cooldown(self):
        scenario = get_scenario("grid-rewire")
        static = play_scenario(scenario, adaptive=False)
        assert all(r.time >= 0 for r in static.rounds)

    def test_max_rounds_truncates(self):
        result = play_scenario(get_scenario("mesh-growth"), max_rounds=3)
        streamed = [r for r in result.rounds if r.time >= 0]
        assert len(streamed) == 3

    def test_buffered_regime_counts_batches(self):
        result = play_scenario(get_scenario("cdr-weekly"), max_rounds=4)
        streamed = [r for r in result.rounds if r.time >= 0]
        assert [r.events for r in streamed[:-1]] == [400] * (len(streamed) - 1)

    def test_digest_round_trips_exactly_through_json(self):
        result = play_scenario(get_scenario("powerlaw-decay"))
        digest = result.digest()
        assert json.loads(json.dumps(digest)) == digest

    def test_result_summaries(self):
        result = play_scenario(get_scenario("mesh-growth"))
        assert result.peak_cut_ratio() >= result.final_cut_ratio()
        assert len(result.series("cut_ratio")) == len(result)
        assert result.total_migrations() == sum(result.series("migrations"))

    def test_slack_reaches_the_balance_policy(self):
        # Tight slack gates migrations harder than loose slack: the two
        # digests must differ — slack is not a dead field.
        scenario = get_scenario("cdr-weekly")
        tight = play_scenario(scaled(scenario, slack=1.0)).digest()
        loose = play_scenario(scaled(scenario, slack=2.0)).digest()
        assert tight != loose

    def test_sizes_partition_vertices_every_round(self):
        result = play_scenario(get_scenario("cdr-weekly"))
        for r in result.rounds:
            assert sum(r.sizes) == r.num_vertices


class TestScenarioCli:
    def test_list(self, capsys):
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_missing_name_prints_catalog(self, capsys):
        assert main(["scenario"]) == 2
        assert "mesh-growth" in capsys.readouterr().out

    def test_run_with_json_digest(self, tmp_path, capsys):
        out_file = tmp_path / "digest.json"
        code = main(
            ["scenario", "mesh-growth", "--max-rounds", "4",
             "--backend", "compact", "--json", str(out_file)]
        )
        assert code == 0
        assert "final cut ratio" in capsys.readouterr().out
        digest = json.loads(out_file.read_text())
        assert digest["scenario"] == "mesh-growth"
        assert digest["rounds"]

    def test_static_flag(self, capsys):
        code = main(["scenario", "grid-rewire", "--static", "--max-rounds", "3"])
        assert code == 0
        assert "static hash" in capsys.readouterr().out

    def test_zero_rounds_handled_cleanly(self, capsys):
        code = main(
            ["scenario", "cdr-weekly", "--static", "--max-rounds", "0"]
        )
        assert code == 0
        assert "no rounds executed" in capsys.readouterr().out

    def test_seed_override(self, capsys):
        code = main(["scenario", "mesh-growth", "--seed", "5", "--max-rounds", "2"])
        assert code == 0
        assert "seed=5" in capsys.readouterr().out
