"""The socket executor and its worker side: the multi-host protocol.

What multi-host must *not* change is results — the socket backend replays
the same timelines as the in-process executors (the cross-executor and
golden suites pin that; here the codec/combining knobs get their own
identity checks).  What it must add is operability: workers spawn from the
CLI and print their bound address, dead or wedged or unreachable workers
surface as the same clear ``RuntimeError`` shape the pipe path raises, and
the per-kind byte counters the wire benchmark reads actually meter the
traffic.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.apps.pagerank import PageRank
from repro.cluster import (
    Coordinator,
    InlineExecutor,
    LocalWorkerPool,
    SocketExecutor,
    make_executor,
)
from repro.cluster.worker import parse_address, parse_worker_addresses
from repro.generators import mesh_3d
from repro.pregel.system import PregelConfig


@pytest.fixture(scope="module")
def pool():
    with LocalWorkerPool(2) as workers:
        yield workers


def _digest(executor, steps=5, staleness=0):
    config = PregelConfig(
        num_workers=4, seed=3, quiet_window=5, snapshot_staleness=staleness
    )
    with Coordinator(
        mesh_3d(5), PageRank(), config, executor=executor
    ) as system:
        system.run(steps)
        return (
            [
                (r.superstep, r.migrations_announced, r.cut_edges,
                 tuple(r.sizes), r.computed_vertices,
                 r.traffic.compute_units)
                for r in system.reports
            ],
            dict(system.values),
            set(system.halted),
        )


class TestAddressParsing:
    def test_parse_address(self):
        assert parse_address("localhost:9000") == ("localhost", 9000)
        assert parse_address(("10.0.0.1", 9001)) == ("10.0.0.1", 9001)
        assert parse_address("::1:9002") == ("::1", 9002)  # rightmost colon
        for bad in ("nohost", ":9000", "host:", ""):
            with pytest.raises(ValueError, match="bad worker address"):
                parse_address(bad)

    def test_parse_worker_addresses(self):
        assert parse_worker_addresses(None) == []
        assert parse_worker_addresses("a:1, b:2 ,") == [("a", 1), ("b", 2)]
        assert parse_worker_addresses(["a:1", ("b", 2)]) == [
            ("a", 1),
            ("b", 2),
        ]


class TestSocketExecutor:
    def test_results_identical_across_codec_and_combining(self, pool):
        reference = _digest(InlineExecutor())
        for kwargs in (
            {},
            {"codec": "pickle"},
            {"combine_inbox": False},
            {"codec": "pickle", "combine_inbox": False},
        ):
            assert (
                _digest(SocketExecutor(pool.addresses, **kwargs)) == reference
            ), f"socket run diverged with {kwargs!r}"

    def test_results_identical_under_staleness(self, pool):
        want = _digest(InlineExecutor(), staleness=3)
        assert _digest(SocketExecutor(pool.addresses), staleness=3) == want

    def test_byte_counters_meter_every_command_kind(self, pool):
        executor = SocketExecutor(pool.addresses)
        with Coordinator(
            mesh_3d(5),
            PageRank(),
            PregelConfig(num_workers=4, seed=3, quiet_window=5),
            executor=executor,
        ) as system:
            system.run(4)
            system.shard_consistency_check()  # exercises the snapshot kind
        # stop() already ran (Coordinator.close), but the counters survive.
        for counters in (executor.bytes_sent, executor.bytes_received):
            assert set(counters) >= {"init", "step", "snapshot"}
            assert all(n > 0 for n in counters.values())

    def test_combining_shrinks_step_traffic(self, pool):
        combined = SocketExecutor(pool.addresses)
        raw = SocketExecutor(
            pool.addresses, codec="pickle", combine_inbox=False
        )
        assert _digest(combined) == _digest(raw)
        assert combined.bytes_sent["step"] < raw.bytes_sent["step"]

    def test_env_var_supplies_addresses(self, pool, monkeypatch):
        monkeypatch.setenv(
            "REPRO_SOCKET_WORKERS", ",".join(pool.addresses)
        )
        executor = make_executor("socket")
        assert isinstance(executor, SocketExecutor)
        assert _digest(executor) == _digest(InlineExecutor())

    def test_make_executor_workers_truncates_the_address_list(self, pool):
        executor = SocketExecutor(pool.addresses, workers=1)
        assert executor._resolve_addresses() == [
            parse_address(pool.addresses[0])
        ]

    def test_missing_addresses_fail_with_guidance(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOCKET_WORKERS", raising=False)
        with pytest.raises(ValueError, match="REPRO_SOCKET_WORKERS"):
            SocketExecutor().start({0: object()})

    def test_unreachable_worker_is_a_clear_error(self):
        # Grab a port nobody listens on by binding and closing it.
        import socket as socketlib

        probe = socketlib.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        executor = SocketExecutor(
            [f"127.0.0.1:{port}"], connect_timeout=0.5
        )
        with pytest.raises(RuntimeError, match="cannot reach shard worker"):
            executor.start({0: PageRank()})
        executor.stop()  # idempotent after the failed start

    def test_dead_worker_mid_run_is_a_clear_error(self):
        with LocalWorkerPool(1) as lone:
            executor = SocketExecutor(lone.addresses)
            with Coordinator(
                mesh_3d(3),
                PageRank(),
                PregelConfig(num_workers=2, seed=0),
                executor=executor,
            ) as system:
                system.run(1)
                lone.close()  # the "host" goes away mid-run
                with pytest.raises(
                    RuntimeError, match=r"shard worker 0 .* (died|timed out)"
                ):
                    system.run_superstep()

    def test_wedged_worker_times_out_with_a_clear_error(self, pool):
        # A worker that accepts but never answers must not hang the
        # coordinator: the bounded read surfaces it as "timed out".
        import socket as socketlib

        listener = socketlib.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        try:
            executor = SocketExecutor(
                [f"127.0.0.1:{port}"], read_timeout=0.5
            )
            with pytest.raises(RuntimeError, match="timed out"):
                executor.start({0: PageRank()})
            executor.stop()
        finally:
            listener.close()

    def test_sequential_sessions_reuse_one_worker_pool(self, pool):
        # Coordinator.close ends the session; the pool's servers accept
        # the next one with fresh state — the harness contract every
        # golden socket run relies on.
        first = _digest(SocketExecutor(pool.addresses), steps=3)
        second = _digest(SocketExecutor(pool.addresses), steps=3)
        assert first == second


class TestWorkerCli:
    def test_spawned_worker_serves_a_coordinator_session(self):
        import repro

        # The test process imports repro off pytest's pythonpath; the
        # spawned worker needs the same directory on *its* path.
        package_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p
            for p in (package_dir, env.get("PYTHONPATH"))
            if p
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            match = re.match(
                r"repro worker listening on (\S+:\d+)\n", line
            )
            assert match, f"unparseable worker banner: {line!r}"
            address = match.group(1)
            want = _digest(InlineExecutor(), steps=3)
            assert _digest(SocketExecutor([address]), steps=3) == want
            assert process.wait(timeout=10) == 0
            assert "served 1 session(s)" in process.stdout.read()
        finally:
            if process.poll() is None:  # pragma: no cover - failure path
                process.kill()
                process.wait()

    def test_worker_rejects_negative_sessions(self, capsys):
        from repro.cli import main

        assert main(["worker", "--listen", "127.0.0.1:0",
                     "--sessions", "-1"]) == 2
        assert "--sessions" in capsys.readouterr().out


class _ErringStub:
    """Module-level (picklable) shard stub whose compute always fails."""

    def run_superstep(self, task):  # pragma: no cover - runs worker-side
        raise RuntimeError("kaboom")

    def apply_patch(self, patch):  # pragma: no cover - runs worker-side
        pass

    def snapshot(self):
        return ({}, set())


def test_worker_error_replies_keep_the_session_alive(pool):
    # ShardHost catches shard failures and answers ("error", traceback);
    # the TCP session — and the server — must survive to serve the next
    # command and the next session.
    executor = SocketExecutor(pool.addresses[:1])
    with executor:
        executor.start({0: _ErringStub()})
        for _ in range(2):  # the error is repeatable, not fatal
            with pytest.raises(RuntimeError, match="kaboom"):
                executor.step({0: None}, {})
        assert executor.snapshot() == {0: ({}, set())}
    # And the pool still serves fresh sessions afterwards.
    assert _digest(SocketExecutor(pool.addresses), steps=2) is not None
