"""Relaxed synchrony: stale decision snapshots + the pipelined executor.

The staleness contract has three sides, each pinned here:

* ``snapshot_staleness=0`` (the default) is *bit-identical* to the strict
  BSP protocol the golden fixtures pin — the knob's existence must not
  perturb a single byte of the pregel-* timelines;
* with ``k > 0`` the decision inputs age deliberately (capacity vector and
  epoch frozen for up to ``k`` extra supersteps) but everything else stays
  exact: placement mirrors still track the authoritative assignment under
  churn/migrations/faults, serial and sharded systems still replay
  identical timelines, and a resync barrier fully refreshes the snapshot;
* the capacity broadcast is *skipped* on barriers whose snapshot will be
  reused — one publish per ``k + 1`` supersteps, the protocol's metered
  saving.

The :class:`~repro.cluster.executor.PipelinedExecutor` rides along: its
``supports_pipelining`` capability flag, the in-order delta stream, and its
timeline identity with the blocking executors.
"""

import json
from pathlib import Path

import pytest

from repro.apps.pagerank import PageRank
from repro.cluster import (
    Coordinator,
    InlineExecutor,
    PipelinedExecutor,
    ProcessExecutor,
    ThreadExecutor,
)
from repro.cluster.shard import Shard, ShardTask
from repro.core.heuristic import DecisionContext
from repro.generators import mesh_3d
from repro.graph.events import AddEdge, AddVertex, RemoveEdge, RemoveVertex
from repro.pregel.fault import FaultPlan
from repro.pregel.system import PregelConfig, PregelSystem
from repro.scenarios import get_scenario, play_scenario

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_SCENARIOS = ["mesh-growth", "grid-rewire", "cdr-weekly"]


def _fixture(name):
    return json.loads(
        (GOLDEN_DIR / f"pregel-{name}.json").read_text(encoding="utf-8")
    )


def _report_digest(reports):
    return [
        (
            r.superstep,
            r.migrations_requested,
            r.migrations_announced,
            r.migrations_blocked,
            r.cut_edges,
            tuple(r.sizes),
            r.computed_vertices,
            r.mutations_applied,
            r.traffic.capacity_messages,
        )
        for r in reports
    ]


_CHURN = {
    4: [
        AddVertex(1000),
        AddEdge(1000, 0),
        RemoveVertex(43),
        AddEdge(1000, 87),
        AddEdge(1001, 1002),
        RemoveEdge(0, 1),
    ],
    7: [RemoveVertex(1001), AddEdge(1002, 5)],
}


def _run_churned(system, steps=12, consistency=False):
    """Drive ``system`` through the shared churn script; returns the digest."""
    for step in range(steps):
        events = _CHURN.get(step)
        if events:
            system.inject_events(list(events))
        system.run_superstep()
        if consistency:
            system.shard_consistency_check()
    return _report_digest(system.reports)


# ----------------------------------------------------------------------
# k = 0: bit-identity with the strict protocol
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
def test_staleness_zero_replays_the_golden_timeline(name):
    """An explicit staleness=0 through the scenario engine changes nothing."""
    digest = play_scenario(
        get_scenario(name), engine="pregel", staleness=0
    ).superstep_digest()
    assert digest == _fixture(name)


def test_staleness_zero_on_the_pipelined_executor_matches_golden():
    """The new backend at the scenario level, with the knob spelled out."""
    digest = play_scenario(
        get_scenario("mesh-growth"),
        engine="pregel",
        executor="pipelined",
        staleness=0,
    ).superstep_digest()
    assert digest == _fixture("mesh-growth")


def test_snapshot_staleness_validation():
    with pytest.raises(ValueError, match="snapshot_staleness"):
        PregelConfig(snapshot_staleness=-1)
    with pytest.raises(ValueError, match="snapshot_staleness"):
        PregelConfig(snapshot_staleness="2")


# ----------------------------------------------------------------------
# k > 0: systems, modes and executors still agree with each other
# ----------------------------------------------------------------------


@pytest.mark.parametrize("staleness", [1, 3])
def test_systems_and_modes_agree_under_staleness(staleness):
    """Serial system == sharded/pipelined == coordinator decisions, at any k.

    Staleness changes *what* is decided (aged inputs) but must never make
    the outcome depend on where the decision runs — the mode/executor
    identity contract survives relaxed synchrony.
    """

    def config(**kw):
        return PregelConfig(
            num_workers=4,
            seed=3,
            quiet_window=5,
            snapshot_staleness=staleness,
            **kw,
        )

    serial = PregelSystem(mesh_3d(5), PageRank(), config())
    reference = _run_churned(serial)
    with Coordinator(
        mesh_3d(5), PageRank(), config(), executor=PipelinedExecutor(2)
    ) as sharded:
        assert _run_churned(sharded, consistency=True) == reference
    with Coordinator(
        mesh_3d(5),
        PageRank(),
        config(decisions="coordinator"),
        executor=InlineExecutor(),
    ) as central:
        assert _run_churned(central) == reference


def test_staleness_window_actually_changes_decisions():
    """k > 0 is a real relaxation: aged inputs alter migration activity.

    (Guards against the window silently resyncing every round, which would
    make every other test here pass vacuously.)
    """
    def run(staleness):
        system = PregelSystem(
            mesh_3d(5),
            PageRank(),
            PregelConfig(
                num_workers=4, seed=3, quiet_window=5,
                snapshot_staleness=staleness,
            ),
        )
        return _run_churned(system)

    assert run(0) != run(3)


def test_mirrors_stay_exact_under_churn_faults_and_staleness():
    """The relaxed protocol still broadcasts placement deltas every
    barrier: shard mirrors (and resident state) must remain exact even
    while decision inputs age, across churn and a worker fault."""
    config = PregelConfig(
        num_workers=4, seed=3, quiet_window=5, snapshot_staleness=2
    )
    with Coordinator(
        mesh_3d(6),
        PageRank(),
        config,
        fault_plan=FaultPlan().add(9, 2),
        executor=PipelinedExecutor(2),
    ) as system:
        digest = _run_churned(system, steps=14, consistency=True)
    assert sum(row[2] for row in digest) > 0, "no migrations exercised"


# ----------------------------------------------------------------------
# The snapshot lifecycle: versions, ages, resync barriers
# ----------------------------------------------------------------------


@pytest.mark.parametrize("staleness", [0, 1, 3])
def test_resync_fully_refreshes_the_snapshot(staleness):
    """Property: age never exceeds k, and the epoch follows the resync
    cadence exactly — ``version == s - ((s - 1) % (k + 1))`` for a run
    that decides every superstep, so a resync round has ``version == s``.
    """
    system = PregelSystem(
        mesh_3d(4),
        PageRank(),
        PregelConfig(num_workers=3, seed=1, snapshot_staleness=staleness),
    )
    period = staleness + 1
    for _ in range(3 * period + 2):
        system.run_superstep()
        context = system._decision_ctx
        s = system.superstep
        assert context.round_index == s
        assert 0 <= context.age <= staleness
        assert context.version == s - ((s - 1) % period)
        if (s - 1) % period == 0:  # resync round
            assert context.age == 0
            assert context.version == s


def test_capacity_broadcast_is_gated_to_the_resync_cadence():
    """One k·(k−1) publish per (k+1) supersteps — the metered saving.

    Superstep 1's traffic additionally carries the start-of-run publish
    (the protocol needs one barrier to propagate initial capacities).
    """
    def capacity_timeline(staleness, steps=10):
        system = PregelSystem(
            mesh_3d(4),
            PageRank(),
            PregelConfig(num_workers=4, seed=1, snapshot_staleness=staleness),
        )
        return [
            r.traffic.capacity_messages for r in system.run(steps)
        ]

    publish = 4 * 3  # num_workers * (num_workers - 1) metered messages
    assert capacity_timeline(0) == [2 * publish] + [publish] * 9
    assert capacity_timeline(3) == [
        publish, 0, 0, publish, 0, 0, 0, publish, 0, 0
    ]


def test_aged_rekeys_only_the_round_index():
    context = DecisionContext(
        round_index=5,
        remaining=(3.0, 1.0, 0.0),
        willingness=0.5,
        lane=17,
        version=5,
    )
    aged = context.aged(9)
    assert aged.round_index == 9
    assert aged.version == 5
    assert aged.age == 4
    assert aged.remaining == context.remaining
    assert aged.lane == context.lane
    assert aged.num_partitions == 3
    assert context.age == 0  # the original is untouched (frozen)


def test_shard_resolves_stale_rounds_from_its_cache():
    """The wire shape: a fresh snapshot opens the window, a bare round
    index re-keys the cached snapshot (no capacity vector re-shipped)."""
    shard = Shard(0, PageRank(), None, continuous=True)

    def task(decision):
        return ShardTask(
            superstep=1, inbox={}, num_vertices=0, agg_previous={},
            decision=decision,
        )

    assert shard._decision_snapshot(task(None)) is None
    fresh = DecisionContext(
        round_index=3, remaining=(2.0, 2.0), willingness=0.5, lane=7,
        version=3,
    )
    assert shard._decision_snapshot(task(fresh)) is fresh
    stale = shard._decision_snapshot(task(5))
    assert stale == fresh.aged(5)
    assert stale.version == 3 and stale.age == 2


# ----------------------------------------------------------------------
# The pipelined executor
# ----------------------------------------------------------------------


def test_executor_capability_flags():
    assert InlineExecutor.capabilities.supports_pipelining is False
    assert ThreadExecutor.capabilities.supports_pipelining is False
    assert ProcessExecutor.capabilities.supports_pipelining is False
    assert PipelinedExecutor.capabilities.supports_pipelining is True
    # The PR 6 boolean survives as an instance-level view of the record.
    assert InlineExecutor().supports_pipelining is False
    assert PipelinedExecutor(workers=1).supports_pipelining is True


def test_non_pipelining_executors_decline_step_stream():
    with InlineExecutor() as executor, pytest.raises(
        NotImplementedError, match="pipelin"
    ):
        next(executor.step_stream({}, {}))


def test_pipelined_executor_counts_streamed_steps():
    config = PregelConfig(num_workers=4, seed=3, quiet_window=5)
    executor = PipelinedExecutor(2)
    with Coordinator(
        mesh_3d(5), PageRank(), config, executor=executor
    ) as system:
        system.run(6)
        assert executor.steps_streamed == 6
        assert executor.merge_seconds >= 0.0
        assert 0.0 <= executor.overlap_seconds <= executor.merge_seconds
