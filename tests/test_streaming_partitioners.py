"""Tests for the wider Stanton–Kliot streaming heuristic family."""

import pytest

from repro.partitioning import (
    BalancedPartitioner,
    ChunkingPartitioner,
    ExponentialGreedy,
    HashPartitioner,
    LinearDeterministicGreedy,
    STREAMING_STRATEGIES,
    TriangleGreedy,
    UnweightedGreedy,
    balanced_capacities,
)

ALL = [
    BalancedPartitioner,
    ChunkingPartitioner,
    UnweightedGreedy,
    ExponentialGreedy,
    TriangleGreedy,
]


def make_state(cls, graph, k=3, slack=1.10):
    caps = balanced_capacities(graph.num_vertices, k, slack)
    return cls().partition(graph, k, list(caps))


class TestCommonContract:
    @pytest.mark.parametrize("cls", ALL)
    def test_total_assignment(self, small_mesh, cls):
        state = make_state(cls, small_mesh)
        assert len(state) == small_mesh.num_vertices
        state.validate()

    @pytest.mark.parametrize("cls", ALL)
    def test_deterministic(self, small_powerlaw, cls):
        a = make_state(cls, small_powerlaw)
        b = make_state(cls, small_powerlaw)
        assert dict(a.assignment_items()) == dict(b.assignment_items())

    @pytest.mark.parametrize("cls", ALL)
    def test_capacity_respected(self, small_mesh, cls):
        k = 4
        caps = balanced_capacities(small_mesh.num_vertices, k, 1.05)
        state = cls().partition(small_mesh, k, list(caps))
        for pid in range(k):
            assert state.size(pid) <= caps[pid]

    def test_registry(self):
        assert set(STREAMING_STRATEGIES) == {"BAL", "CHUNK", "UGR", "EGR", "TGR"}


class TestBalanced:
    def test_perfectly_even(self, small_mesh):
        state = make_state(BalancedPartitioner, small_mesh)
        assert max(state.sizes) - min(state.sizes) <= 1

    def test_ignores_edges(self, two_cliques):
        # pure balancing cuts roughly half the edges of a clique pair
        state = make_state(BalancedPartitioner, two_cliques, k=2)
        assert state.cut_edges >= 4


class TestChunking:
    def test_fills_in_order(self, small_mesh):
        k = 3
        caps = balanced_capacities(small_mesh.num_vertices, k, 1.10)
        state = ChunkingPartitioner().partition(small_mesh, k, list(caps))
        # first partitions hit capacity before later ones get anything big
        assert state.size(0) == caps[0]
        assert state.size(2) <= caps[2]

    def test_wins_on_local_stream_order(self, small_mesh):
        # Mesh ids are lattice-ordered, so chunking exploits stream locality
        # and lands far below hash.
        chunk = make_state(ChunkingPartitioner, small_mesh)
        hsh = make_state(HashPartitioner, small_mesh)
        assert chunk.cut_ratio() < 0.5 * hsh.cut_ratio()


class TestGreedyVariants:
    @pytest.mark.parametrize("cls", [UnweightedGreedy, ExponentialGreedy,
                                     TriangleGreedy])
    def test_beats_hash_on_mesh(self, small_mesh, cls):
        greedy = make_state(cls, small_mesh)
        hsh = make_state(HashPartitioner, small_mesh)
        assert greedy.cut_ratio() < hsh.cut_ratio()

    def test_unweighted_densifies_more_than_ldg(self, small_powerlaw):
        # without the linear penalty, UGR crowds early partitions harder
        k = 3
        caps = balanced_capacities(small_powerlaw.num_vertices, k, 1.3)
        ugr = UnweightedGreedy().partition(small_powerlaw, k, list(caps))
        ldg = LinearDeterministicGreedy().partition(
            small_powerlaw, k, list(caps)
        )
        assert max(ugr.sizes) >= max(ldg.sizes)

    def test_triangle_greedy_on_cliques(self, two_cliques):
        state = make_state(TriangleGreedy, two_cliques, k=2, slack=1.3)
        # dense blocks stay together: at most the bridge + spill cuts
        assert state.cut_edges <= 4

    def test_adaptive_runner_accepts_streaming_starts(self, small_mesh):
        from repro.core import AdaptiveConfig, run_to_convergence

        state = make_state(ExponentialGreedy, small_mesh)
        initial = state.cut_ratio()
        run_to_convergence(
            small_mesh, state, AdaptiveConfig(seed=0, quiet_window=10)
        )
        assert state.cut_ratio() <= initial + 1e-9


class TestHotspotFeedbackInPregel:
    def test_hot_worker_sheds_load_automatically(self):
        """End-to-end §6 future work: a vertex program with skewed per-vertex
        cost makes one worker hot; with HotspotBalance the system drains it
        without any manual activity feeding."""
        from repro.core import HotspotBalance
        from repro.generators import mesh_3d
        from repro.pregel import PregelConfig, PregelSystem
        from repro.pregel.vertex import VertexProgram

        class SkewedCost(VertexProgram):
            def initial_value(self, vertex_id, graph):
                return 0

            def compute(self, ctx, messages):
                ctx.send_to_neighbors(1)

            def compute_cost(self, ctx, messages):
                # vertices divisible by 7 are expensive (hot data items)
                return 50.0 if ctx.vertex_id % 7 == 0 else 1.0

        graph = mesh_3d(6)
        policy = HotspotBalance(max_shrink=0.3)
        system = PregelSystem(
            graph,
            SkewedCost(),
            PregelConfig(num_workers=4, adaptive=True, seed=0, balance=policy),
        )
        report = system.run_superstep()
        # the system fed the measured activity into the policy...
        assert policy._activity == report.per_worker_compute
        # ...so the next barrier's capacities are heterogeneous: the hottest
        # worker offers strictly less room than the coldest
        capacities = system.capacities if hasattr(system, "capacities") else (
            system._capacities
        )
        hot = max(range(4), key=lambda w: report.per_worker_compute[w])
        cold = min(range(4), key=lambda w: report.per_worker_compute[w])
        assert capacities[hot] < capacities[cold]
        # and the run stays healthy (hot-worker identity shifts as expensive
        # vertices migrate; emergent global evenness is covered by the
        # explicit-activity ablation bench)
        system.run(30)
        system.state.validate()
