"""``tools/trace_summary.py``: the stdlib-only trace post-processor.

The tool must read *both* exporter formats (JSONL span rows and Chrome
trace-event JSON) back into the same span-dict shape, aggregate per phase
and per lane, and render the tables without importing the repro package —
so these tests feed it real exporter output and then poke the module
directly.
"""

import importlib.util
import io
from pathlib import Path

from repro.obs import write_chrome_trace, write_jsonl

_TOOL_PATH = Path(__file__).resolve().parents[1] / "tools" / "trace_summary.py"
_spec = importlib.util.spec_from_file_location("trace_summary", _TOOL_PATH)
trace_summary = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(trace_summary)

SPANS = [
    ("superstep", "coordinator", 100.0, 0.5, {"superstep": 1}),
    ("compute", "shard-0", 100.05, 0.2, None),
    ("compute", "shard-1", 100.1, 0.3, None),
    ("barrier-merge", "coordinator", 100.4, 0.1, None),
]


def test_load_spans_reads_both_formats(tmp_path):
    jsonl = tmp_path / "trace.jsonl"
    chrome = tmp_path / "trace.json"
    write_jsonl(SPANS, jsonl)
    write_chrome_trace(SPANS, chrome)
    from_jsonl = trace_summary.load_spans(jsonl)
    from_chrome = trace_summary.load_spans(chrome)
    assert [s["name"] for s in from_jsonl] == [s[0] for s in SPANS]
    # Chrome round-trips through µs + origin normalisation; names, lanes
    # and durations survive exactly (durations up to float µs rounding)
    assert [s["name"] for s in from_chrome] == [s[0] for s in SPANS]
    assert [s["lane"] for s in from_chrome] == [s[1] for s in SPANS]
    for row, span in zip(from_chrome, SPANS):
        assert abs(row["dur"] - span[3]) < 1e-9
    assert from_chrome[0]["args"] == {"superstep": 1}


def test_phase_totals_aggregates_by_name():
    totals = trace_summary.phase_totals(
        [dict(name=s[0], lane=s[1], start=s[2], dur=s[3]) for s in SPANS]
    )
    assert abs(totals["compute"] - 0.5) < 1e-12
    assert abs(totals["superstep"] - 0.5) < 1e-12
    assert abs(totals["barrier-merge"] - 0.1) < 1e-12


def test_format_summary_has_all_three_tables(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_jsonl(SPANS, path)
    text = trace_summary.format_summary(trace_summary.load_spans(path))
    assert "wall-clock by phase:" in text
    assert "wall-clock by lane:" in text
    assert "top 4 spans:" in text
    # per-phase aggregation: two compute spans, 500ms total
    phase_line = next(
        line for line in text.splitlines() if line.startswith("compute")
    )
    assert "2" in phase_line.split()
    assert "500.000" in phase_line
    # per-shard totals show up as lane rows
    assert "shard-0" in text
    assert "shard-1" in text


def test_format_summary_empty():
    assert trace_summary.format_summary([]) == "(no spans in trace)"


def test_main_top_limits_the_span_table(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_jsonl(SPANS, path)
    out = io.StringIO()
    assert trace_summary.main([str(path), "--top", "2"], out=out) == 0
    text = out.getvalue()
    assert "top 2 spans:" in text
    # the two longest spans are superstep (0.5) and compute (0.3)
    tail = text.split("top 2 spans:")[1]
    assert "superstep" in tail
    assert "barrier-merge" not in tail


def test_main_reports_unreadable_trace(tmp_path):
    out = io.StringIO()
    assert trace_summary.main([str(tmp_path / "missing.json")], out=out) == 2
    assert "cannot read trace" in out.getvalue()
