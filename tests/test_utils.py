"""Unit tests for repro.utils: RNG derivation, stable hashing, statistics."""

import math
import random

import pytest

from repro.utils import (
    RunningStats,
    derive_seed,
    make_rng,
    mean,
    mean_and_error,
    stable_hash,
    stderr_of_mean,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_labels_distinguish(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_base_seed_distinguishes(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_non_negative(self):
        for seed in (0, 1, -5, 2 ** 70):
            assert derive_seed(seed, "x") >= 0


class TestMakeRng:
    def test_returns_random_instance(self):
        assert isinstance(make_rng(0), random.Random)

    def test_same_seed_same_stream(self):
        a = make_rng(5, "component")
        b = make_rng(5, "component")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_labels_different_streams(self):
        a = make_rng(5, "one")
        b = make_rng(5, "two")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_no_labels_seeds_directly(self):
        assert make_rng(7).random() == random.Random(7).random()


class TestStableHash:
    def test_deterministic_for_ints(self):
        assert stable_hash(12345) == stable_hash(12345)

    def test_deterministic_for_strings(self):
        assert stable_hash("vertex-1") == stable_hash("vertex-1")

    def test_int_and_string_of_int_differ_is_allowed(self):
        # They may collide or not; the contract is only per-type stability.
        assert isinstance(stable_hash(3), int)

    def test_bytes_supported(self):
        assert stable_hash(b"abc") == stable_hash(b"abc")

    def test_rejects_unsupported_types(self):
        with pytest.raises(TypeError):
            stable_hash(3.14)
        with pytest.raises(TypeError):
            stable_hash((1, 2))

    def test_spread_over_partitions(self):
        # Hash mod k should scatter ids reasonably evenly.
        k = 8
        counts = [0] * k
        for v in range(8000):
            counts[stable_hash(v) % k] += 1
        expected = 8000 / k
        for c in counts:
            assert abs(c - expected) < expected * 0.2

    def test_non_negative_64bit(self):
        h = stable_hash("anything")
        assert 0 <= h < 2 ** 64


class TestMeanAndError:
    def test_mean_basic(self):
        assert mean([1, 2, 3]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stderr_single_sample_is_zero(self):
        assert stderr_of_mean([5.0]) == 0.0

    def test_stderr_known_value(self):
        # Samples 1..5: stdev = sqrt(2.5), stderr = sqrt(2.5/5)
        samples = [1, 2, 3, 4, 5]
        assert stderr_of_mean(samples) == pytest.approx(math.sqrt(2.5 / 5))

    def test_mean_and_error_pair(self):
        mu, err = mean_and_error([2.0, 4.0])
        assert mu == 3.0
        assert err == pytest.approx(1.0)

    def test_stderr_empty_raises(self):
        with pytest.raises(ValueError):
            stderr_of_mean([])


class TestRunningStats:
    def test_matches_batch_statistics(self):
        samples = [0.5, 1.5, -2.0, 4.0, 4.0, 0.0]
        rs = RunningStats()
        for x in samples:
            rs.add(x)
        assert rs.n == len(samples)
        assert rs.mean == pytest.approx(mean(samples))
        assert rs.stderr == pytest.approx(stderr_of_mean(samples))
        assert rs.min == -2.0
        assert rs.max == 4.0

    def test_variance_below_two_samples(self):
        rs = RunningStats()
        assert rs.variance == 0.0
        rs.add(3.0)
        assert rs.variance == 0.0

    def test_merge_equals_combined_stream(self):
        xs = [1.0, 2.0, 3.0]
        ys = [10.0, 20.0]
        a = RunningStats()
        b = RunningStats()
        combined = RunningStats()
        for x in xs:
            a.add(x)
            combined.add(x)
        for y in ys:
            b.add(y)
            combined.add(y)
        a.merge(b)
        assert a.n == combined.n
        assert a.mean == pytest.approx(combined.mean)
        assert a.variance == pytest.approx(combined.variance)
        assert a.min == combined.min
        assert a.max == combined.max

    def test_merge_with_empty(self):
        a = RunningStats()
        a.add(1.0)
        b = RunningStats()
        a.merge(b)
        assert a.n == 1
        b.merge(a)
        assert b.n == 1
        assert b.mean == 1.0

    def test_as_dict_keys(self):
        rs = RunningStats()
        rs.add(2.0)
        d = rs.as_dict()
        assert set(d) == {"n", "mean", "stdev", "stderr", "min", "max"}
