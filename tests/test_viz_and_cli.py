"""Tests for the text visualiser and the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.core import AdaptiveConfig, run_to_convergence
from repro.generators import mesh_3d
from repro.partitioning import HashPartitioner, balanced_capacities
from repro.viz import partition_histogram, render_mesh_slice


class TestRenderMeshSlice:
    def _state(self, side, k=4):
        graph = mesh_3d(side)
        caps = balanced_capacities(graph.num_vertices, k)
        return graph, HashPartitioner().partition(graph, k, list(caps))

    def test_frame_dimensions(self):
        _, state = self._state(5)
        frame = render_mesh_slice(state, 5, 5, 5)
        lines = frame.splitlines()
        assert len(lines) == 5
        assert all(len(line) == 5 for line in lines)

    def test_glyphs_match_partitions(self):
        _, state = self._state(4, k=3)
        frame = render_mesh_slice(state, 4, 4, 4, z=0)
        assert set(frame.replace("\n", "")) <= set("012")

    def test_unassigned_renders_dot(self):
        graph, state = self._state(3)
        victim = (0 * 3 + 0) * 3 + 1  # (0,0,z=1): top-left of middle slice
        state.remove_vertex(victim)
        frame = render_mesh_slice(state, 3, 3, 3)  # default z = 1
        assert frame.splitlines()[0][0] == "."

    def test_z_out_of_range(self):
        _, state = self._state(3)
        with pytest.raises(ValueError):
            render_mesh_slice(state, 3, 3, 3, z=5)

    def test_converged_slice_has_fewer_colour_changes(self):
        # The paper's video: regions coalesce.  Count horizontal glyph
        # transitions before and after adaptation; converged must be lower.
        graph, state = self._state(8, k=4)

        def transitions(frame):
            count = 0
            for line in frame.splitlines():
                count += sum(1 for a, b in zip(line, line[1:]) if a != b)
            return count

        before = transitions(render_mesh_slice(state, 8, 8, 8))
        run_to_convergence(graph, state, AdaptiveConfig(seed=0, quiet_window=10))
        after = transitions(render_mesh_slice(state, 8, 8, 8))
        assert after < before


class TestPartitionHistogram:
    def test_bars_scale_with_sizes(self):
        graph = mesh_3d(3)
        caps = balanced_capacities(graph.num_vertices, 2)
        state = HashPartitioner().partition(graph, 2, list(caps))
        text = partition_histogram(state, width=10)
        lines = text.splitlines()
        assert len(lines) == 2
        assert all("|" in line for line in lines)

    def test_empty_state(self):
        from repro.graph import Graph
        from repro.partitioning import PartitionState

        state = PartitionState(Graph(), 2)
        text = partition_histogram(state)
        assert "p0" in text and "p1" in text


class TestCli:
    def _run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_datasets_lists_catalog(self):
        code, output = self._run(["datasets"])
        assert code == 0
        assert "64kcube" in output
        assert "epinion" in output

    def test_generate_then_partition(self, tmp_path):
        edgelist = tmp_path / "g.txt"
        code, output = self._run(
            ["generate", "plc1000", str(edgelist), "--scale", "0.3"]
        )
        assert code == 0
        assert edgelist.exists()
        assignment = tmp_path / "assignment.jsonl"
        code, output = self._run(
            [
                "partition", str(edgelist), "-k", "4",
                "--max-iterations", "150", "-o", str(assignment),
            ]
        )
        assert code == 0
        assert "adaptive cut ratio" in output
        assert assignment.exists()

    def test_partition_with_metis_strategy(self, tmp_path):
        edgelist = tmp_path / "g.txt"
        self._run(["generate", "1e4", str(edgelist), "--scale", "0.05"])
        code, output = self._run(
            ["partition", str(edgelist), "--strategy", "METIS", "-k", "4"]
        )
        assert code == 0
        assert "METIS initial cut ratio" in output
        # METIS path skips the adaptive loop
        assert "adaptive cut ratio" not in output

    def test_watch_renders_frames(self):
        code, output = self._run(
            ["watch", "--side", "6", "--frames", "2",
             "--iterations-per-frame", "5"]
        )
        assert code == 0
        assert output.count("-- frame") == 2
        assert "final:" in output

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            self._run(["nope"])


class TestLabelPropagation:
    def test_finds_planted_communities(self, two_cliques):
        from repro.apps.label_propagation import LabelPropagation
        from repro.pregel import PregelConfig, PregelSystem

        system = PregelSystem(
            two_cliques,
            LabelPropagation(),
            PregelConfig(num_workers=2, adaptive=False, continuous=False, seed=0),
        )
        system.run_until_quiescent(60)
        communities = LabelPropagation.communities(system.values)
        # the two 4-cliques are found (possibly merged across the bridge)
        assert len(communities) <= 2
        if len(communities) == 2:
            sizes = sorted(len(c) for c in communities.values())
            assert sizes == [4, 4]

    def test_labels_are_valid_vertices(self, small_mesh):
        from repro.apps.label_propagation import LabelPropagation
        from repro.pregel import PregelConfig, PregelSystem

        system = PregelSystem(
            small_mesh,
            LabelPropagation(max_rounds=10),
            PregelConfig(num_workers=2, adaptive=False, continuous=False, seed=0),
        )
        system.run(12)
        assert set(system.values.values()) <= set(small_mesh.vertices())
