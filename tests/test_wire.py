"""The cluster wire format: codec round-trips, framing, inbox combining.

Three contracts:

* **Round-trip fidelity** — ``loads(dumps(x))`` reproduces every protocol
  shape exactly, *including Python types*: the worker must see the same
  ``int`` vertex ids, ``float`` payloads, tuples-vs-lists and dataclass
  records the coordinator sent, or shard compute would silently diverge
  across transports.  Pinned by example for the hot packed paths and by
  hypothesis for arbitrary compositions.
* **Framing** — ``[u32 length][payload]`` with exact reads; a peer closing
  *between* frames is :class:`EOFError` (the departed-worker signal), a
  close mid-frame or an oversized length prefix is :class:`WireError`.
* **Combining** — :func:`~repro.cluster.wire.combine_inbox` folds mailboxes
  with the program's combiner *without changing modelled cost*:
  :class:`~repro.cluster.wire.CombinedMessages` iterates as one message but
  ``len()`` reports the pre-combining count, which is what keeps
  compute-unit timelines bit-identical across combining executors.
"""

import math
import pickle
import socket

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import wire
from repro.cluster.shard import ShardDelta, ShardPatch, ShardTask
from repro.cluster.wire import (
    CODEC_BINARY,
    CODEC_PICKLE,
    CombinedMessages,
    WireError,
    combine_inbox,
)

try:
    import numpy
except ImportError:  # pragma: no cover - the numpy-free CI leg
    numpy = None


def roundtrip(obj, codec=CODEC_BINARY):
    return wire.loads(wire.dumps(obj, codec=codec))


def assert_same(got, want):
    """Equality plus exact container/scalar types (the codec's contract)."""
    assert type(got) is type(want)
    assert got == want or (
        isinstance(want, float) and math.isnan(want) and math.isnan(got)
    )


# ---------------------------------------------------------------------------
# Codec round-trips, by example
# ---------------------------------------------------------------------------


SCALARS = [
    None,
    True,
    False,
    0,
    -1,
    7,
    255,
    -128,
    1 << 40,
    -(1 << 40),
    (1 << 63) - 1,
    -(1 << 63),
    (1 << 200) + 3,  # past i64: varint zigzag path
    -(1 << 200),
    0.0,
    -0.0,
    1.5,
    float("inf"),
    float("-inf"),
    float("nan"),
    "",
    "vertex",
    "ünïcodé \N{GREEK SMALL LETTER PI}",
    b"",
    b"\x00\x80raw",
]


@pytest.mark.parametrize("value", SCALARS, ids=repr)
@pytest.mark.parametrize("codec", [CODEC_BINARY, CODEC_PICKLE])
def test_scalar_roundtrip(value, codec):
    assert_same(roundtrip(value, codec), value)


@pytest.mark.parametrize(
    "value",
    [
        [],
        (),
        {},
        set(),
        [1, 2, 3],
        (4, 5, 6),
        [1.0, -2.5, float("inf")],
        (0.25, 0.75),
        [1, 2.0, "mixed", None],
        [1, 2, 1 << 100],  # bigint spoils the packed path, not the result
        {"a": 1, 3: (1, 2)},
        {0: 0.5, 7: 0.25, -3: 1.0},  # the packed {int: float} inbox shape
        {"v1": 0.5, "v2": 0.25},  # str vertex ids stay generic
        {frozenset({1}), 2, "x"},
        [(1, 2), (3, 4)],  # placement_delta shape
        [((0, 5), 0.1), ((1, 6), 0.2)],  # outbox shape
        [((0, 5), "payload")],  # non-float payload falls back cleanly
        [[1, [2, [3, []]]]],
    ],
    ids=repr,
)
@pytest.mark.parametrize("codec", [CODEC_BINARY, CODEC_PICKLE])
def test_container_roundtrip(value, codec):
    got = roundtrip(value, codec)
    assert_same(got, value)
    if isinstance(value, (list, tuple)) and value:
        for got_item, want_item in zip(got, value):
            assert type(got_item) is type(want_item)


def test_empty_frames_and_messages():
    # The protocol's smallest messages must survive: empty containers
    # everywhere, and the ("ok", None) ack.
    for value in ([], {}, (), set(), ("ok", None), ("apply", {})):
        assert_same(roundtrip(value), value)
    with pytest.raises(WireError, match="empty"):
        wire.loads(b"")


def test_vertex_ids_may_be_ints_or_strings():
    # Graphs are allowed non-int vertex ids; inboxes keyed by str must
    # round-trip just like the packed int fast path.
    int_inbox = {0: [0.5], 1: [0.25, 0.125]}
    str_inbox = {"a": [0.5], "b:1": [0.25, 0.125]}
    assert_same(roundtrip(int_inbox), int_inbox)
    assert_same(roundtrip(str_inbox), str_inbox)


def test_large_id_columns_delta_encode():
    # Mesh-scale vertex ids need 4-byte slots as absolute values, but the
    # gaps between consecutive entries fit one byte — the column must ship
    # near one byte per id, not four (the bench_wire full-scale floor
    # depends on this).
    ids = list(range(100_000, 101_000))
    assert_same(roundtrip(ids), ids)
    assert len(wire.dumps(ids)) < 1000 * 2
    # Unsorted and negative gaps take the same path and round-trip exactly.
    jittered = [100_000 + ((i * 37) % 50) for i in range(1_000)]
    assert_same(roundtrip(jittered), jittered)
    assert len(wire.dumps(jittered)) < 1_000 * 2
    # The packed inbox shape inherits the narrow keys.
    inbox = {vid: 0.5 for vid in ids}
    assert_same(roundtrip(inbox), inbox)
    # A first value beyond i64 ships as a varint, so even a bigint column
    # packs when its gaps are narrow.
    big = [(1 << 80) + i for i in range(10)]
    assert_same(roundtrip(big), big)


def test_scattered_columns_stay_plain_packed():
    # Gaps as wide as the values buy nothing: the plain width-packed form
    # is kept and still round-trips exactly.
    scattered = [0, 1 << 30, -(1 << 30), 1 << 20]
    assert_same(roundtrip(scattered), scattered)


def test_empty_delta_int_array_is_a_wire_error():
    # A corrupt frame claiming a delta-encoded column with zero entries
    # must fail loudly, not read a negative payload length.
    frame = bytes([wire.CODEC_BINARY, 0x0B, 0x00, 0x41, 0x00])
    with pytest.raises(WireError, match="delta"):
        wire.loads(frame)


def test_combined_messages_roundtrip_preserves_logical_len():
    combined = CombinedMessages((0.75,), 5)
    for codec in (CODEC_BINARY, CODEC_PICKLE):
        got = roundtrip(combined, codec)
        assert type(got) is CombinedMessages
        assert len(got) == 5
        assert list(got) == [0.75]
    # Non-float payloads (a FEM-style tuple message) use the generic tag.
    fancy = CombinedMessages(((1.0, 2.0),), 3)
    got = roundtrip(fancy)
    assert len(got) == 3 and list(got) == [(1.0, 2.0)]
    # The packed combined-inbox shape: {int: CombinedMessages([float])}.
    inbox = {4: CombinedMessages((0.5,), 9), 7: CombinedMessages((1.5,), 2)}
    got = roundtrip(inbox)
    assert {k: (list(v), len(v)) for k, v in got.items()} == {
        4: ([0.5], 9),
        7: ([1.5], 2),
    }


def test_protocol_records_roundtrip():
    task = ShardTask(
        superstep=3,
        inbox={0: [0.5, 0.25], 9: [1.0]},
        num_vertices=216,
        agg_previous={"pagerank_sum": 1.0},
        decision=None,
        candidates=(4, 9),
    )
    patch = ShardPatch(
        upserts={5: ((1, 2), 0.125)},
        removes=[7],
        placement_delta=[(5, 1), (7, -1)],
    )
    delta = ShardDelta(
        shard_id=2,
        computed=51,
        values={0: 0.3, 1: 0.7},
        outbox=[((0, 5), 0.1), ((1, 6), 0.2)],
        halted_added=[3],
        halted_removed=[],
        aggregated={"pagerank_sum": 0.4},
        compute_units=77,
        proposals=[(5, 0, 1)],
    )
    for record in (task, patch, delta):
        for codec in (CODEC_BINARY, CODEC_PICKLE):
            assert_same(roundtrip(record, codec), record)
    message = ("step", {2: (task, patch)})
    assert_same(roundtrip(message), message)


@pytest.mark.skipif(numpy is None, reason="numpy not installed")
def test_ndarray_roundtrip():
    arrays = [
        numpy.arange(12, dtype=numpy.float64).reshape(3, 4),
        numpy.array([], dtype=numpy.int32),
        numpy.arange(10)[::2],  # non-contiguous view
        numpy.array(3.5),  # zero-dim
    ]
    for want in arrays:
        got = roundtrip(want)
        assert isinstance(got, numpy.ndarray)
        assert got.dtype == want.dtype and got.shape == want.shape
        assert numpy.array_equal(got, want)
        got[...] = 0  # the decode must hand back a writable copy
    # Object-dtype arrays cannot be raw buffers; they fall back to pickle.
    objarr = numpy.array([{"k": 1}, None], dtype=object)
    got = roundtrip(objarr)
    assert got[0] == {"k": 1} and got[1] is None


def test_arbitrary_values_fall_back_to_pickle():
    # Program values the codec has no tag for ride the pickle fallback.
    value = complex(1.0, -2.0)
    assert_same(roundtrip(value), value)
    assert_same(roundtrip(range(5)), range(5))


# ---------------------------------------------------------------------------
# Codec round-trips, by property
# ---------------------------------------------------------------------------


def message_values():
    scalars = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(),
        st.floats(allow_nan=False),
        st.text(max_size=20),
        st.binary(max_size=20),
    )
    return st.recursive(
        scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.lists(children, max_size=4).map(tuple),
            st.dictionaries(
                st.one_of(st.integers(), st.text(max_size=8)),
                children,
                max_size=4,
            ),
        ),
        max_leaves=12,
    )


@given(value=message_values())
@settings(max_examples=150, deadline=None)
def test_property_binary_roundtrip_is_exact(value):
    assert_same(roundtrip(value), value)


@given(
    inbox=st.dictionaries(
        st.integers(min_value=-(1 << 62), max_value=1 << 62),
        st.lists(st.floats(allow_nan=False), min_size=1, max_size=5),
        max_size=8,
    )
)
@settings(max_examples=100, deadline=None)
def test_property_inbox_shapes_roundtrip(inbox):
    assert_same(roundtrip(inbox), inbox)


@given(
    payloads=st.lists(st.floats(allow_nan=False), min_size=2, max_size=6)
)
@settings(max_examples=100, deadline=None)
def test_property_combining_preserves_fold_and_count(payloads):
    inbox = {0: list(payloads)}
    folded = combine_inbox(inbox, lambda a, b: a + b)
    mailbox = folded[0]
    assert type(mailbox) is CombinedMessages
    assert len(mailbox) == len(payloads)  # modelled cost is unchanged
    want = payloads[0]
    for payload in payloads[1:]:
        want = want + payload
    assert list(mailbox) == [want]  # compute sees the left fold, once
    assert_same(roundtrip(folded), folded)


# ---------------------------------------------------------------------------
# Framing and codec negotiation
# ---------------------------------------------------------------------------


def test_codec_id_resolution():
    assert wire.codec_id("binary") == CODEC_BINARY
    assert wire.codec_id(CODEC_BINARY) == CODEC_BINARY
    assert wire.codec_id("pickle") == CODEC_PICKLE
    assert wire.codec_id(CODEC_PICKLE) == CODEC_PICKLE
    with pytest.raises(ValueError, match="unknown wire codec"):
        wire.codec_id("json")


def test_raw_pickles_are_valid_frames():
    # Connection.send produces bare pickles; 0x80 (the PROTO opcode) is
    # the pickle codec byte, so they decode without a wrapper.
    payload = pickle.dumps(("step", {0: (None, None)}))
    assert payload[0] == CODEC_PICKLE
    assert wire.loads(payload) == ("step", {0: (None, None)})


def test_unknown_codec_byte_is_rejected():
    with pytest.raises(WireError, match="codec"):
        wire.loads(b"\x7fgarbage")


def test_truncated_binary_payload_is_a_wire_error():
    payload = wire.dumps({0: [0.5, 0.25], 1: [1.0]})
    with pytest.raises(WireError, match="truncated"):
        wire.loads(payload[: len(payload) - 3])


def socket_pair():
    left, right = socket.socketpair()
    left.settimeout(5)
    right.settimeout(5)
    return left, right


def test_frames_cross_a_socket_in_order():
    left, right = socket_pair()
    try:
        messages = [("init", {0: None}), ("step", {}), ("stop", None)]
        total = 0
        for message in messages:
            total += wire.send_frame(left, message)
        for want in messages:
            got, codec = wire.recv_frame(right, with_codec=True)
            assert got == want and codec == CODEC_BINARY
        assert total == sum(len(wire.frame(m)) for m in messages)
    finally:
        left.close()
        right.close()


def test_clean_close_is_eof_but_midframe_close_is_wire_error():
    left, right = socket_pair()
    left.close()
    try:
        with pytest.raises(EOFError):
            wire.recv_frame(right)  # closed at a frame boundary
    finally:
        right.close()

    left, right = socket_pair()
    try:
        data = wire.frame(("step", {0: (None, None)}))
        left.sendall(data[: len(data) // 2])
        left.close()
        with pytest.raises(WireError, match="mid-frame"):
            wire.recv_frame(right)
    finally:
        right.close()


def test_oversized_length_prefix_is_rejected_without_allocating():
    left, right = socket_pair()
    try:
        import struct

        left.sendall(struct.pack("<I", wire.MAX_FRAME + 1))
        with pytest.raises(WireError, match="MAX_FRAME"):
            wire.recv_payload(right)
    finally:
        left.close()
        right.close()


# ---------------------------------------------------------------------------
# Combining semantics
# ---------------------------------------------------------------------------


def test_combine_inbox_identity_cases():
    # No combiner, or nothing to fold: the original mapping comes back
    # untouched (same object — no copy on the hot path).
    inbox = {0: [0.5], 1: [1.0]}
    assert combine_inbox(inbox, None) is inbox
    assert combine_inbox(inbox, lambda a, b: a + b) is inbox
    assert combine_inbox({}, lambda a, b: a + b) == {}


def test_combine_inbox_folds_in_mailbox_order():
    seen = []

    def combiner(a, b):
        seen.append((a, b))
        return a + b

    folded = combine_inbox({7: [1.0, 2.0, 4.0], 8: [8.0]}, combiner)
    assert seen == [(1.0, 2.0), (3.0, 4.0)]  # left fold, delivery order
    assert list(folded[7]) == [7.0] and len(folded[7]) == 3
    assert folded[8] == [8.0]  # single-message mailboxes pass through


def test_combined_messages_sum_matches_uncombined():
    # The exact compute-side contract: sum(list(mailbox)) over a combined
    # mailbox equals the uncombined sum bit-for-bit for additive folds.
    messages = [0.1, 0.2, 0.30000000000000004, 0.4]
    folded = combine_inbox({0: messages}, lambda a, b: a + b)[0]
    assert sum(list(folded)) == sum(messages)
