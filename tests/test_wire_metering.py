"""Byte metering: the counters must equal actual bytes on the medium.

``bytes_sent`` / ``bytes_received`` feed ``benchmarks/bench_wire.py`` and
the ``--show-metrics`` snapshot, so they have to be *measurements*, not
estimates.  Three layers of proof:

* a hypothesis property pins the framing arithmetic — for arbitrary
  messages, :func:`~repro.cluster.wire.send_frame`'s return value is
  exactly the bytes put on the socket, which is exactly the payload plus
  the 4-byte length prefix, and the receive side accounts the same total
  even when the OS hands the stream back a few bytes at a time;
* a pipe-path integration test wraps the live
  :class:`multiprocessing.connection.Connection` objects mid-session and
  checks the executor's per-kind counter deltas sum to the bytes the
  wrapped medium actually saw (payload only — the ``Connection`` frame is
  the OS's business);
* the socket-path twin wraps the live TCP sockets, where the actual
  stream bytes *include* every frame's length prefix.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.pagerank import PageRank
from repro.cluster import (
    Coordinator,
    LocalWorkerPool,
    ProcessExecutor,
    SocketExecutor,
    wire,
)
from repro.generators import mesh_3d
from repro.pregel.system import PregelConfig

import pytest


# ---------------------------------------------------------------------------
# The framing property: sent == framed == payload + 4, on send and receive


class _ScriptedSocket:
    """A socket double: records sendall bytes, replays recv in chunks."""

    def __init__(self, feed=b"", chunk=1 << 20):
        self.sent = bytearray()
        self._feed = memoryview(bytes(feed))
        self._chunk = chunk

    def sendall(self, data):
        self.sent.extend(data)

    def recv(self, n):
        n = min(n, self._chunk, len(self._feed))
        data = bytes(self._feed[:n])
        self._feed = self._feed[n:]
        return data


def _message_values():
    scalars = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(1 << 40), max_value=1 << 40),
        st.floats(allow_nan=False),
        st.text(max_size=20),
        st.binary(max_size=20),
    )
    return st.recursive(
        scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.lists(children, max_size=4).map(tuple),
            st.dictionaries(st.text(max_size=8), children, max_size=4),
        ),
        max_leaves=10,
    )


@given(
    kind=st.sampled_from(["init", "step", "apply", "snapshot"]),
    payload=_message_values(),
    chunk=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=100, deadline=None)
def test_property_frame_accounting_is_exact(kind, payload, chunk):
    message = (kind, payload)
    sender = _ScriptedSocket()
    reported = wire.send_frame(sender, message)
    # what send_frame reports is what hit the medium: payload + u32 prefix
    assert reported == len(sender.sent)
    assert reported == len(wire.dumps(message)) + 4
    # the receive side sees the same arithmetic, even with a miserly
    # OS handing back `chunk` bytes per recv()
    receiver = _ScriptedSocket(feed=bytes(sender.sent), chunk=chunk)
    received_payload = wire.recv_payload(receiver)
    assert len(received_payload) + 4 == reported
    assert wire.loads(received_payload) == wire.loads(
        bytes(sender.sent[4:])
    )


# ---------------------------------------------------------------------------
# Integration: counter deltas equal bytes the live medium actually carried


class _CountingConnection:
    """A pipe wrapper tallying the payload bytes crossing it."""

    def __init__(self, conn):
        self._conn = conn
        self.sent = 0
        self.received = 0

    def send_bytes(self, data):
        self.sent += len(data)
        self._conn.send_bytes(data)

    def recv_bytes(self):
        data = self._conn.recv_bytes()
        self.received += len(data)
        return data

    def __getattr__(self, name):
        return getattr(self._conn, name)


class _CountingSocket:
    """A TCP socket wrapper tallying every stream byte (prefix included)."""

    def __init__(self, sock):
        self._sock = sock
        self.sent = 0
        self.received = 0

    def sendall(self, data):
        self.sent += len(data)
        self._sock.sendall(data)

    def recv(self, n):
        data = self._sock.recv(n)
        self.received += len(data)
        return data

    def __getattr__(self, name):
        return getattr(self._sock, name)


@pytest.fixture(scope="module")
def pool():
    with LocalWorkerPool(2) as workers:
        yield workers


def _session(executor):
    return Coordinator(
        mesh_3d(5),
        PageRank(),
        PregelConfig(num_workers=4, seed=3, quiet_window=5),
        executor=executor,
    )


def _deltas(counters, base):
    return sum(counters[kind] - base.get(kind, 0) for kind in counters)


def _assert_counters_match_medium(executor, media):
    with _session(executor) as system:
        # wrap the live media *after* start so every subsequent counter
        # bump has an independently tallied ground truth
        wrapped = media()
        sent_base = dict(executor.bytes_sent)
        received_base = dict(executor.bytes_received)
        system.run(4)
        system.shard_consistency_check()  # snapshot kind crosses too
        assert _deltas(executor.bytes_sent, sent_base) == sum(
            w.sent for w in wrapped
        )
        assert _deltas(executor.bytes_received, received_base) == sum(
            w.received for w in wrapped
        )
        assert {"step", "snapshot"} <= set(executor.bytes_sent)


def test_pipe_counters_equal_payload_bytes_on_the_pipe():
    executor = ProcessExecutor(workers=2)

    def wrap():
        executor._pipes = [
            _CountingConnection(pipe) for pipe in executor._pipes
        ]
        return executor._pipes

    _assert_counters_match_medium(executor, wrap)


def test_socket_counters_equal_stream_bytes_with_prefix(pool):
    executor = SocketExecutor(pool.addresses)

    def wrap():
        executor._sockets = [
            _CountingSocket(sock) for sock in executor._sockets
        ]
        return executor._sockets

    _assert_counters_match_medium(executor, wrap)
