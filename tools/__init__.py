"""Repo tooling: standalone scripts plus the :mod:`tools.reprolint` package.

``check_links.py`` and ``trace_summary.py`` stay plain scripts; this
``__init__`` exists so ``python -m tools.reprolint`` resolves from a bare
checkout (CI runs it exactly that way).
"""
