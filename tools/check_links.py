#!/usr/bin/env python
"""Fail on dead relative links in markdown files.

Usage::

    python tools/check_links.py README.md ROADMAP.md docs

Arguments are markdown files or directories (scanned recursively for
``*.md``).  Every inline link or image target is checked, except:

* absolute URLs (``http://``, ``https://``, ``mailto:`` — anything with a
  scheme); a link checker that needs the network is a flaky link checker;
* pure in-page anchors (``#section``);
* targets that resolve *outside* the working tree (relative to the
  current directory) — the GitHub site-relative idiom, e.g. the CI badge's
  ``../../actions/workflows/ci.yml``, which is a URL on github.com rather
  than a file in the checkout.

Relative targets are resolved against the *containing file's* directory;
an optional ``#anchor`` suffix is stripped (anchor existence is not
verified — only that the file it points into exists).  Exit status is the
number of dead links, capped at process-exit semantics (non-zero = fail),
with one ``file:line: target`` diagnostic per dead link on stderr.

Stdlib only, so it runs identically in CI and on a bare checkout.
"""

import re
import sys
from pathlib import Path

# Inline markdown links/images: [text](target) / ![alt](target).  Angle
# brackets around the target and a trailing "title" are tolerated.
_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
_SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def iter_markdown(arguments):
    """Yield every markdown file named by the CLI arguments."""
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        else:
            yield path


def dead_links(path):
    """Yield ``(line_number, target)`` for each unresolvable link."""
    text = path.read_text(encoding="utf-8")
    for line_number, line in enumerate(text.splitlines(), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if _SCHEME.match(target) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.is_relative_to(Path.cwd().resolve()):
                continue  # site-relative (escapes the checkout): not ours
            if not resolved.exists():
                yield line_number, target


def main(argv):
    """Check every file; returns the process exit code."""
    if not argv:
        print("usage: check_links.py FILE_OR_DIR...", file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for path in iter_markdown(argv):
        if not path.exists():
            print(f"{path}: no such file", file=sys.stderr)
            failures += 1
            continue
        checked += 1
        for line_number, target in dead_links(path):
            print(f"{path}:{line_number}: dead link -> {target}",
                  file=sys.stderr)
            failures += 1
    print(f"checked {checked} markdown file(s): "
          f"{failures or 'no'} dead link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
