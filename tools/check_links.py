#!/usr/bin/env python
"""Fail on dead relative links in markdown files.

Usage::

    python tools/check_links.py README.md ROADMAP.md docs

Arguments are markdown files or directories (scanned recursively for
``*.md``).  Every inline link or image target is checked, except:

* absolute URLs (``http://``, ``https://``, ``mailto:`` — anything with a
  scheme); a link checker that needs the network is a flaky link checker;
* targets that resolve *outside* the working tree (relative to the
  current directory) — the GitHub site-relative idiom, e.g. the CI badge's
  ``../../actions/workflows/ci.yml``, which is a URL on github.com rather
  than a file in the checkout.

Relative targets are resolved against the *containing file's* directory.
``#anchor`` fragments — pure in-page (``#section``) and cross-file
(``other.md#section``) — are verified against the target document's
headings, slugged the way GitHub does (lowercase, punctuation stripped,
spaces to hyphens, ``-N`` suffixes for duplicates); fenced code blocks
are ignored so a ``# comment`` in an example never mints an anchor.
Exit status is the number of dead links, capped at process-exit
semantics (non-zero = fail), with one ``file:line: target`` diagnostic
per dead link on stderr.

Stdlib only, so it runs identically in CI and on a bare checkout.
"""

import re
import sys
from pathlib import Path

# Inline markdown links/images: [text](target) / ![alt](target).  Angle
# brackets around the target and a trailing "title" are tolerated.
_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
_SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
_FENCE = re.compile(r"^\s*(```|~~~)")
_HEADING_LINK = re.compile(r"\[([^\]]*)\]\([^)]*\)")


def heading_anchors(text):
    """GitHub-style anchor slugs for every heading in ``text``.

    The slug rules GitHub applies when rendering: take the heading text
    (links reduced to their label), lowercase it, drop every character
    that is not a word character, space or hyphen, turn spaces into
    hyphens, and disambiguate repeats with ``-1``, ``-2``, … suffixes.
    """
    anchors = set()
    counts = {}
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match is None:
            continue
        title = _HEADING_LINK.sub(r"\1", match.group(1))
        slug = re.sub(r"[^\w\- ]", "", title.lower()).replace(" ", "-")
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def _anchor_cache():
    """A memoised ``path -> heading_anchors`` lookup for cross-file checks."""
    cache = {}

    def anchors_of(path):
        """Anchor slugs of ``path``, parsed at most once."""
        resolved = path.resolve()
        if resolved not in cache:
            cache[resolved] = heading_anchors(
                resolved.read_text(encoding="utf-8")
            )
        return cache[resolved]

    return anchors_of


def iter_markdown(arguments):
    """Yield every markdown file named by the CLI arguments."""
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        else:
            yield path


def dead_links(path, anchors_of=None):
    """Yield ``(line_number, target)`` for each unresolvable link.

    A link is dead when its file does not exist *or* its ``#fragment``
    names no heading in the document it points into (the containing
    document for pure ``#anchor`` targets).
    """
    if anchors_of is None:
        anchors_of = _anchor_cache()
    text = path.read_text(encoding="utf-8")
    for line_number, line in enumerate(text.splitlines(), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if _SCHEME.match(target):
                continue
            relative, _, fragment = target.partition("#")
            if not relative:  # in-page anchor: check this document
                if fragment and fragment not in anchors_of(path):
                    yield line_number, target
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.is_relative_to(Path.cwd().resolve()):
                continue  # site-relative (escapes the checkout): not ours
            if not resolved.exists():
                yield line_number, target
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in anchors_of(resolved):
                    yield line_number, target


def main(argv):
    """Check every file; returns the process exit code."""
    if not argv:
        print("usage: check_links.py FILE_OR_DIR...", file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    anchors_of = _anchor_cache()
    for path in iter_markdown(argv):
        if not path.exists():
            print(f"{path}: no such file", file=sys.stderr)
            failures += 1
            continue
        checked += 1
        for line_number, target in dead_links(path, anchors_of):
            print(f"{path}:{line_number}: dead link -> {target}",
                  file=sys.stderr)
            failures += 1
    print(f"checked {checked} markdown file(s): "
          f"{failures or 'no'} dead link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
