"""reprolint — the repo's AST-based determinism & wire-contract analyzer.

The repo's value proposition is byte-identical timelines across executors,
decision modes and numpy on/off.  That rests on conventions — canonical
sort-before-iterate orders, counter-split RNG keying, picklable
wire-crossing state, honest ``ExecutorCapabilities`` — which golden tests
only catch *after* a regression ships.  reprolint enforces them at the AST
level, before any golden diff runs:

=========  ==============================================================
Code       What it guards
=========  ==============================================================
DET001     no iteration over unordered collections in determinism-
           critical modules without a canonical-order wrapper
DET002     no unseeded ``random.*`` / ``numpy.random.*`` use outside
           ``repro/utils/rng.py``
DET003     no wall-clock reads outside ``repro/obs`` except declared
           measurement-only sites (cross-checked against the allowlist)
WIRE001    every ``ShardTask``/``ShardPatch``/``ShardDelta`` field is
           encoded *and* decoded by ``cluster/wire.py``, and referenced
           dataclasses are codec- or pickle-fallback-safe
CAP001     ``ExecutorCapabilities`` literals match the methods the class
           actually implements (the static twin of ``validate_executor``)
OBS001     span/metric name literals appear in the checked-in registry
           (``repro/obs/names.py``), keeping ``docs/observability.md``
           honest
=========  ==============================================================

Plus framework codes: ``PARSE001`` (unparsable file), ``PRAGMA001``
(malformed suppression pragma), ``PRAGMA002`` (suppression that suppressed
nothing).

A true-but-intentional site is silenced with a reasoned pragma::

    for v in set(a) ^ set(b):  # reprolint: allow-DET001 debug diagnostic only

The reason is mandatory — a bare ``allow-DET001`` is itself a finding.
Run ``python -m tools.reprolint src/repro`` (``--json`` for machines);
the rule catalog with rationale lives in ``docs/static-analysis.md``.
"""

from tools.reprolint.config import DEFAULT_CONFIG, LintConfig
from tools.reprolint.core import (
    Finding,
    LintContext,
    ParsedModule,
    Rule,
    lint_paths,
    render_human,
    render_json,
)
from tools.reprolint.rules import ALL_RULES, make_rules

__all__ = [
    "ALL_RULES",
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintContext",
    "ParsedModule",
    "Rule",
    "lint_paths",
    "make_rules",
    "render_human",
    "render_json",
]
