"""CLI for reprolint: ``python -m tools.reprolint <paths> [--json]``.

Exit codes: 0 for a clean tree, 1 when there are findings, 2 for usage
errors (unknown flags, nonexistent paths).  CI runs
``python -m tools.reprolint src/repro --json`` and gates on the exit
code; the JSON document is the job artifact.
"""

import argparse
import sys

from tools.reprolint.config import DEFAULT_CONFIG
from tools.reprolint.core import (
    _iter_python_files,
    lint_paths,
    render_human,
    render_json,
)
from tools.reprolint.rules import make_rules


def main(argv=None):
    """Run the linter over the given paths; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description=(
            "AST-based determinism & wire-contract analyzer for this repo "
            "(rule catalog: docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="+", help="files or directories to lint"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report"
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    args = parser.parse_args(argv)

    rules = make_rules()
    if args.select:
        wanted = {code.strip() for code in args.select.split(",") if code}
        known = {rule.code for rule in rules}
        unknown = wanted - known
        if unknown:
            parser.error(
                f"unknown rule code(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})"
            )
        rules = [rule for rule in rules if rule.code in wanted]

    try:
        findings = lint_paths(args.paths, DEFAULT_CONFIG, rules=rules)
        checked = len(_iter_python_files(args.paths))
    except FileNotFoundError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(render_json(findings, checked))
    else:
        print(render_human(findings, checked))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
