"""The declared project knowledge reprolint checks the tree against.

Everything a checker needs to know about *this* repo that an AST cannot
tell it lives here, checked in and reviewed like code: which packages are
determinism-critical, which attributes are known to hold sets across
module boundaries, which functions are allowed to read the wall clock
(and why), where the wire structs and the observability name registry
live.  Tests construct their own :class:`LintConfig` pointing at fixture
trees; the CLI always uses :data:`DEFAULT_CONFIG`.
"""

from dataclasses import dataclass, field

__all__ = ["DEFAULT_CONFIG", "LintConfig"]


#: Wall-clock sites allowed by DET003, keyed by module path suffix.  Every
#: entry is measurement-only by documented contract — the values feed
#: counters, tracer spans or ``SuperstepReport`` timing fields, never a
#: digest, timeline value or wire payload:
#:
#: * ``PregelSystem._run_superstep`` / ``._partitioning_phase`` — phase
#:   counters, tracer span stamps and ``SuperstepReport.decision_seconds``
#:   (documented "measurement, not semantics" on the dataclass);
#: * ``Coordinator._compute_phase`` — the decision-slicing stopwatch and
#:   the ``barrier-merge`` span stamps;
#: * ``PipelinedExecutor.step_stream`` — the merge/overlap counters;
#: * ``_WorkerProtocolExecutor._send`` / ``._recv_message`` — the
#:   ``wire-send``/``wire-recv`` span stamps.
#:
#: DET003 cross-checks this map against the tree: an entry whose function
#: no longer reads the clock is reported as stale, so the allowlist can
#: only shrink with the code.
_WALLCLOCK_ALLOWLIST = {
    "repro/pregel/system.py": frozenset(
        {
            "PregelSystem._run_superstep",
            "PregelSystem._partitioning_phase",
        }
    ),
    "repro/cluster/coordinator.py": frozenset(
        {"Coordinator._compute_phase"}
    ),
    "repro/cluster/executor.py": frozenset(
        {
            "PipelinedExecutor.step_stream",
            "_WorkerProtocolExecutor._send",
            "_WorkerProtocolExecutor._recv_message",
        }
    ),
}


@dataclass(frozen=True)
class LintConfig:
    """One run's project knowledge; all paths are posix substring/suffixes."""

    #: Packages where iteration order is digest- or wire-relevant (DET001,
    #: DET003 scope).  Matched as substrings of the file's posix path.
    det_critical: tuple = (
        "repro/pregel/",
        "repro/cluster/",
        "repro/core/",
        "repro/partitioning/",
        "repro/graph/",
    )
    #: The one module allowed to touch ``random`` directly (DET002).
    rng_module: str = "repro/utils/rng.py"
    #: Paths where wall-clock reads are always fine (DET003): the
    #: observability layer exists to measure wall-clock.
    wallclock_exempt: tuple = ("repro/obs/",)
    #: Declared measurement-only wall-clock sites (DET003); see above.
    wallclock_allowlist: dict = field(
        default_factory=lambda: dict(_WALLCLOCK_ALLOWLIST)
    )
    #: Attributes known to hold sets across module boundaries (DET001's
    #: intra-module inference cannot see e.g. ``PregelSystem._active``
    #: from ``coordinator.py``).
    known_set_attrs: frozenset = frozenset(
        {"halted", "_active", "_dirty", "_in_flight_origins"}
    )
    #: Callables that canonicalise an unordered iterable (DET001
    #: neutralisers).
    order_wrappers: frozenset = frozenset({"sorted", "sort_vertices"})
    #: The module defining the wire-crossing structs, its codec sibling,
    #: the struct names and the codec's dispatch table (WIRE001).
    wire_shard_suffix: str = "cluster/shard.py"
    wire_codec_name: str = "wire.py"
    wire_structs: tuple = ("ShardTask", "ShardPatch", "ShardDelta")
    wire_dispatch: str = "_ENCODERS"
    #: Capability flags and the methods an honest claimant must implement
    #: (CAP001), plus the reverse map: methods whose presence requires the
    #: claim.
    capability_requirements: dict = field(
        default_factory=lambda: {
            "supports_pipelining": ("step_stream",),
            "remote": ("_transport_send", "_transport_recv"),
        }
    )
    capability_reverse: dict = field(
        default_factory=lambda: {"step_stream": "supports_pipelining"}
    )
    #: The checked-in span/metric name registry (OBS001).
    obs_registry_suffix: str = "repro/obs/names.py"
    #: Packages holding batched vertex kernels, and the kernel method
    #: whose body must stay loop-free (KER001).
    kernel_paths: tuple = ("repro/apps/", "repro/pregel/")
    kernel_method: str = "compute_batch"


#: The repo's own configuration — what ``python -m tools.reprolint`` uses.
DEFAULT_CONFIG = LintConfig()
