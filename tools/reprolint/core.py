"""The reprolint framework: findings, pragmas, the engine, the outputs.

A *rule* is a class with a ``code`` (``DET001``-style), a per-module
:meth:`Rule.check_module` hook and a cross-module :meth:`Rule.finalize`
hook.  The engine parses every ``*.py`` file once into a
:class:`ParsedModule`, runs each rule over each module, then each rule's
finalizer over the whole set, and finally applies suppression pragmas:

* ``# reprolint: allow-CODE reason`` at the end of the offending line (or
  alone on the line directly above) suppresses that line's ``CODE``
  findings;
* the reason is mandatory — a pragma without one is a ``PRAGMA001``
  finding;
* a pragma that suppressed nothing is a ``PRAGMA002`` finding, so stale
  suppressions cannot linger after the offending code is fixed.

Output is one ``path:line:col: CODE message`` diagnostic per finding
(``--json`` renders the same data as a document); the exit code is 0 only
for a clean tree.
"""

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Finding",
    "LintContext",
    "MALFORMED_PRAGMA",
    "PARSE_ERROR",
    "ParsedModule",
    "Pragma",
    "Rule",
    "UNUSED_PRAGMA",
    "lint_paths",
    "render_human",
    "render_json",
]

#: Framework finding codes (rules own the ``DET``/``WIRE``/… families).
PARSE_ERROR = "PARSE001"
MALFORMED_PRAGMA = "PRAGMA001"
UNUSED_PRAGMA = "PRAGMA002"

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(?P<directive>\S+)(?:\s+(?P<reason>.*\S))?\s*$"
)
_ALLOW = re.compile(r"^allow-(?P<code>[A-Z]+\d+)$")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule code anchored to a file position."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def render(self):
        """The human one-liner: ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class Pragma:
    """One well-formed ``allow-CODE`` suppression found in a comment."""

    line: int
    code: str
    reason: str
    standalone: bool
    used: bool = False

    def covers(self, line):
        """True when a finding on ``line`` falls under this pragma."""
        return line == self.line or (self.standalone and line == self.line + 1)


class ParsedModule:
    """One parsed source file plus its comment pragmas."""

    def __init__(self, path, display, source):
        self.path = Path(path)
        #: Output-facing path (relative, posix) — what findings carry.
        self.display = display
        #: Resolution-facing posix path — what scope patterns match on.
        self.posix = self.path.resolve().as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source)
        self.pragmas, self.pragma_errors = _scan_pragmas(display, source)

    def module_suffix_matches(self, suffix):
        """True when this file is the one ``suffix`` names."""
        return self.posix.endswith("/" + suffix) or self.posix == suffix

    def in_any(self, patterns):
        """True when any posix ``pattern`` appears in this file's path."""
        return any(pattern in self.posix for pattern in patterns)


def _scan_pragmas(display, source):
    """Find every ``# reprolint:`` comment; returns (pragmas, errors).

    Comments are located with :mod:`tokenize`, not string search, so a
    ``# reprolint:`` inside a string literal is never misread as one.
    """
    pragmas = []
    errors = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            tok for tok in tokens if tok.type == tokenize.COMMENT
        ]
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse ran first
        return pragmas, errors
    for tok in comments:
        if "reprolint:" not in tok.string:
            continue
        line_no, col = tok.start
        match = _PRAGMA.search(tok.string)
        if match is None:
            errors.append(
                Finding(
                    MALFORMED_PRAGMA, display, line_no, col,
                    "unparsable reprolint pragma "
                    "(expected `# reprolint: allow-CODE reason`)",
                )
            )
            continue
        directive = match.group("directive")
        allow = _ALLOW.match(directive)
        if allow is None:
            errors.append(
                Finding(
                    MALFORMED_PRAGMA, display, line_no, col,
                    f"unknown reprolint directive {directive!r} "
                    "(expected `allow-CODE`)",
                )
            )
            continue
        reason = match.group("reason")
        if not reason:
            errors.append(
                Finding(
                    MALFORMED_PRAGMA, display, line_no, col,
                    f"suppression `{directive}` needs a reason: "
                    "`# reprolint: allow-CODE why this is safe`",
                )
            )
            continue
        standalone = not tok.line[: col].strip()
        pragmas.append(
            Pragma(line_no, allow.group("code"), reason, standalone)
        )
    return pragmas, errors


class Rule:
    """Base class every checker subclasses.

    ``code`` is the finding family (one code per rule), ``title`` the
    one-line summary the rule catalog renders.  :meth:`check_module` runs
    once per parsed file; :meth:`finalize` runs once after every module was
    seen, for cross-module contracts and staleness checks.  Both yield
    :class:`Finding` objects.
    """

    code = "RULE000"
    title = ""

    def check_module(self, module, ctx):
        """Per-file hook; yields findings for ``module``."""
        return ()

    def finalize(self, ctx):
        """Whole-tree hook, after every module was checked."""
        return ()

    def finding(self, module_or_path, line, col, message):
        """Construct a finding of this rule's code."""
        path = getattr(module_or_path, "display", module_or_path)
        return Finding(self.code, path, line, col, message)


class LintContext:
    """What rules see: the config, every parsed module, shared scratch."""

    def __init__(self, config, modules):
        self.config = config
        self.modules = modules
        #: Free-form per-rule scratch space (keyed by rule code) so a
        #: rule's ``check_module`` can leave notes for its ``finalize``.
        self.scratch = {}

    def find_module(self, suffix):
        """The scanned module whose path ends with ``suffix`` (or None)."""
        for module in self.modules:
            if module.module_suffix_matches(suffix):
                return module
        return None


def _iter_python_files(paths):
    """Resolve CLI path arguments to a sorted, de-duplicated file list."""
    seen = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found = sorted(path.rglob("*.py"))
        else:
            found = [path]
        for item in found:
            if item not in seen:
                seen.append(item)
    return seen


def lint_paths(paths, config, rules=None):
    """Lint every python file under ``paths``; returns sorted findings.

    ``rules`` defaults to one instance of every registered rule (the
    import lives inside the function: :mod:`tools.reprolint.rules` imports
    this module).  Raises :class:`FileNotFoundError` for a named path that
    does not exist — a misspelt CLI argument must not pass as a clean run.
    """
    if rules is None:
        from tools.reprolint.rules import make_rules

        rules = make_rules()
    modules = []
    findings = []
    for path in _iter_python_files(paths):
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        display = _display_path(path)
        try:
            source = path.read_text(encoding="utf-8")
            modules.append(ParsedModule(path, display, source))
        except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            findings.append(
                Finding(
                    PARSE_ERROR, display, line, 0,
                    f"cannot parse file: {exc}",
                )
            )
    ctx = LintContext(config, modules)
    for rule in rules:
        for module in modules:
            findings.extend(rule.check_module(module, ctx))
        findings.extend(rule.finalize(ctx))
    return _apply_pragmas(modules, findings)


def _display_path(path):
    """Relative posix rendering for output (falls back to the input)."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _apply_pragmas(modules, findings):
    """Drop suppressed findings; add pragma-error and unused-pragma ones."""
    by_path = {module.display: module for module in modules}
    kept = []
    for finding in findings:
        module = by_path.get(finding.path)
        suppressed = False
        if module is not None and finding.code not in (
            MALFORMED_PRAGMA, UNUSED_PRAGMA, PARSE_ERROR,
        ):
            for pragma in module.pragmas:
                if pragma.code == finding.code and pragma.covers(finding.line):
                    pragma.used = True
                    suppressed = True
                    break
        if not suppressed:
            kept.append(finding)
    for module in modules:
        kept.extend(module.pragma_errors)
        for pragma in module.pragmas:
            if not pragma.used:
                kept.append(
                    Finding(
                        UNUSED_PRAGMA, module.display, pragma.line, 0,
                        f"pragma `allow-{pragma.code}` suppresses nothing "
                        "here; remove it",
                    )
                )
    return sorted(kept, key=lambda f: (f.path, f.line, f.col, f.code))


def render_human(findings, checked):
    """The terminal rendering: one line per finding plus a summary."""
    lines = [finding.render() for finding in findings]
    lines.append(
        f"reprolint: checked {checked} file(s), "
        f"{len(findings) or 'no'} finding(s)"
    )
    return "\n".join(lines)


def render_json(findings, checked):
    """The machine rendering ``--json`` prints."""
    counts = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    return json.dumps(
        {
            "version": 1,
            "checked": checked,
            "findings": [
                {
                    "code": f.code,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                }
                for f in findings
            ],
            "counts": dict(sorted(counts.items())),
        },
        indent=2,
    )
