"""The checker registry: one module per rule code.

Adding a checker is three steps (``docs/static-analysis.md`` walks through
them): subclass :class:`tools.reprolint.core.Rule` in a new module here,
import it below, and append it to :data:`ALL_RULES`.  The engine
instantiates every registered rule per run via :func:`make_rules`.
"""

from tools.reprolint.rules.cap001 import CapabilityHonestyRule
from tools.reprolint.rules.det001 import UnorderedIterationRule
from tools.reprolint.rules.det002 import UnseededRandomRule
from tools.reprolint.rules.det003 import WallClockRule
from tools.reprolint.rules.ker001 import BatchedKernelLoopRule
from tools.reprolint.rules.obs001 import ObservabilityNamesRule
from tools.reprolint.rules.wire001 import WireContractRule

__all__ = ["ALL_RULES", "make_rules"]

#: Every registered rule class, in catalog order.
ALL_RULES = (
    UnorderedIterationRule,
    UnseededRandomRule,
    WallClockRule,
    WireContractRule,
    CapabilityHonestyRule,
    ObservabilityNamesRule,
    BatchedKernelLoopRule,
)


def make_rules():
    """Fresh instances of every registered rule (rules may keep state)."""
    return [rule_cls() for rule_cls in ALL_RULES]
