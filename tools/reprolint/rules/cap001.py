"""CAP001 — executor capability claims must be backed by real overrides.

``ExecutorCapabilities`` is advertised, not inferred: an executor class
*declares* ``supports_pipelining=True`` and the coordinator believes it.
The runtime twin (``validate_executor``) catches dishonest claims when an
executor is actually constructed — but only for executors a test happens
to instantiate.  CAP001 is the static twin: it resolves every class-level
``capabilities = ExecutorCapabilities(...)`` literal, walks the in-file
class hierarchy, and checks that

* a class claiming ``supports_pipelining`` has a real ``step_stream``
  override (the base class raising stub does not count), and a class
  claiming ``remote`` has real ``_transport_send``/``_transport_recv``;
* conversely, a class defining a real ``step_stream`` declares
  ``supports_pipelining`` — a working stream the coordinator will never
  use is a silent misconfiguration.

A *stub* is a method whose body is an optional docstring plus a single
``raise NotImplementedError`` — the repo's convention for
protocol-documenting placeholders.  Flag values must be literal
``True``/``False``; a computed flag is skipped (the runtime validator
still covers it).
"""

import ast

from tools.reprolint.core import Rule

__all__ = ["CapabilityHonestyRule"]

#: Positional parameter order of the ExecutorCapabilities dataclass.
_FIELD_ORDER = (
    "supports_pipelining",
    "releases_gil",
    "remote",
    "requires_picklable",
)


def _is_stub(func):
    """True for a docstring + ``raise NotImplementedError`` placeholder."""
    body = list(func.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    if len(body) != 1 or not isinstance(body[0], ast.Raise):
        return False
    exc = body[0].exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    return isinstance(exc, ast.Name) and exc.id == "NotImplementedError"


def _capability_literal(class_node):
    """The class's ``capabilities = ExecutorCapabilities(...)`` call node."""
    for stmt in class_node.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        for target in targets:
            name = (
                target.id if isinstance(target, ast.Name)
                else getattr(target, "attr", None)
            )
            if name != "capabilities":
                continue
            if isinstance(value, ast.Call) and (
                (
                    isinstance(value.func, ast.Name)
                    and value.func.id == "ExecutorCapabilities"
                )
                or (
                    isinstance(value.func, ast.Attribute)
                    and value.func.attr == "ExecutorCapabilities"
                )
            ):
                return value
    return None


def _literal_flags(call):
    """Flag name -> bool for the literal arguments of the call."""
    flags = {}
    for pos, arg in enumerate(call.args):
        if pos < len(_FIELD_ORDER) and isinstance(arg, ast.Constant):
            flags[_FIELD_ORDER[pos]] = bool(arg.value)
    for kw in call.keywords:
        if kw.arg is not None and isinstance(kw.value, ast.Constant):
            flags[kw.arg] = bool(kw.value)
    return flags


class CapabilityHonestyRule(Rule):
    """Flag capability claims without overrides, and the reverse."""

    code = "CAP001"
    title = (
        "ExecutorCapabilities claim without a matching method override "
        "(or a real override without the claim)"
    )

    def check_module(self, module, ctx):
        """Check every capability-declaring class hierarchy in the file."""
        config = ctx.config
        classes = {
            node.name: node
            for node in module.tree.body
            if isinstance(node, ast.ClassDef)
        }

        def ancestry(node):
            """The class and its in-file ancestors, nearest first."""
            chain, queue, seen = [], [node], set()
            while queue:
                current = queue.pop(0)
                if current.name in seen:
                    continue
                seen.add(current.name)
                chain.append(current)
                for base in current.bases:
                    if isinstance(base, ast.Name) and base.id in classes:
                        queue.append(classes[base.id])
            return chain

        def resolve_method(chain, name):
            """Nearest definition of ``name`` along the chain (or None)."""
            for cls in chain:
                for stmt in cls.body:
                    if (
                        isinstance(
                            stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                        )
                        and stmt.name == name
                    ):
                        return stmt
            return None

        for node in classes.values():
            chain = ancestry(node)
            cap_call = None
            for cls in chain:
                cap_call = _capability_literal(cls)
                if cap_call is not None:
                    break
            if cap_call is None:
                continue  # not part of a capability-declaring hierarchy
            flags = _literal_flags(cap_call)
            own_call = _capability_literal(node)

            # Forward: every claimed flag needs real backing methods.
            for flag, methods in config.capability_requirements.items():
                if not flags.get(flag, False):
                    continue
                for method_name in methods:
                    method = resolve_method(chain, method_name)
                    if method is None or _is_stub(method):
                        state = (
                            "only the raising stub" if method is not None
                            else "no implementation"
                        )
                        anchor = own_call or node
                        yield self.finding(
                            module, anchor.lineno, anchor.col_offset,
                            f"{node.name} claims {flag}=True but has "
                            f"{state} for {method_name}(); implement it or "
                            "drop the claim",
                        )

            # Reverse: a real override defined *here* requires the claim.
            for method_name, flag in config.capability_reverse.items():
                own = resolve_method([node], method_name)
                if own is None or _is_stub(own):
                    continue
                if not flags.get(flag, False):
                    yield self.finding(
                        module, own.lineno, own.col_offset,
                        f"{node.name} implements {method_name}() but its "
                        f"effective capabilities say {flag}=False; the "
                        "coordinator will never use it — declare "
                        f"{flag}=True",
                    )
