"""DET001 — iteration over unordered collections in determinism-critical code.

Sets and frozensets iterate in hash-table order: deterministic for one
interning history, but *not* canonical — a different insertion history, a
different process, or a different vertex-id distribution reorders them.
Anything downstream of such an iteration (wire payloads, dict insertion
orders, digest inputs) silently inherits that order.  The repo's
convention is to wrap every order-carrying iteration in ``sorted()`` /
``sort_vertices()`` (PR 4's stream-merge tie-order bug is what happens
when one site forgets); DET001 enforces the convention inside the
determinism-critical packages.

What counts as *unordered*: set/frozenset displays and comprehensions,
``set(...)``/``frozenset(...)`` calls, set-algebra expressions, names and
attributes assigned a set in the same module, attributes declared
set-typed in :class:`~tools.reprolint.config.LintConfig.known_set_attrs`
(cross-module knowledge the AST cannot infer), ``dict.keys()`` calls and
set-returning methods (``difference``/``union``/…).

What counts as *iteration*: ``for`` targets, comprehension sources
(except set comprehensions — their result is itself unordered, so no
order escapes), and ``list``/``tuple``/``iter`` conversions.  Aggregations
(``len``/``min``/``max``/``any``/``all``) are order-insensitive and never
flagged; ``sorted()``/``sort_vertices()`` neutralise.
"""

import ast

from tools.reprolint.core import Rule

__all__ = ["UnorderedIterationRule"]

_SET_CALLS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset(
    {"keys", "difference", "union", "intersection", "symmetric_difference"}
)
_SET_OPS = (ast.Sub, ast.BitAnd, ast.BitOr, ast.BitXor)
_ITER_CALLS = frozenset({"list", "tuple", "iter"})


def _infer_set_names(tree):
    """Names/attributes assigned an obviously-set value anywhere in the file."""
    names = set()
    attrs = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if not _is_set_literalish(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Attribute):
                attrs.add(target.attr)
    return names, attrs


def _is_set_literalish(node):
    """True for expressions that are a set by construction."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _SET_CALLS
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_set_literalish(node.left) or _is_set_literalish(node.right)
    return False


class UnorderedIterationRule(Rule):
    """Flag order-carrying iteration over unordered collections."""

    code = "DET001"
    title = (
        "unordered iteration in a determinism-critical module without a "
        "canonical-order wrapper"
    )

    def check_module(self, module, ctx):
        """Scan one module (skipped outside the det-critical packages)."""
        config = ctx.config
        if not module.in_any(config.det_critical):
            return
        names, attrs = _infer_set_names(module.tree)
        attrs |= config.known_set_attrs

        def unordered(node):
            """True when ``node`` evaluates to an unordered collection."""
            if _is_set_literalish(node):
                return True
            if isinstance(node, ast.Name):
                return node.id in names
            if isinstance(node, ast.Attribute):
                return node.attr in attrs
            if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
                return unordered(node.left) or unordered(node.right)
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _SET_METHODS
                ):
                    # .keys() is unordered by *convention* here: dict order
                    # is insertion history, which canonical paths must not
                    # depend on.  The set-algebra methods return sets.
                    return func.attr != "keys" or not node.args
                if isinstance(func, ast.Name) and func.id in _SET_CALLS:
                    return True
            return False

        def describe(node):
            """Short phrase naming what is being iterated."""
            if isinstance(node, ast.Name):
                return f"set {node.id!r}"
            if isinstance(node, ast.Attribute):
                return f"set attribute {node.attr!r}"
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                return f"result of .{node.func.attr}()"
            return "unordered expression"

        for node in ast.walk(module.tree):
            sites = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                sites.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
            ):
                sites.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ITER_CALLS
                and len(node.args) == 1
                and not node.keywords
            ):
                sites.append(node.args[0])
            for site in sites:
                if unordered(site):
                    yield self.finding(
                        module, site.lineno, site.col_offset,
                        f"iteration over {describe(site)} leaks hash-table "
                        "order; wrap the iterable in sorted() / "
                        "sort_vertices() or iterate a canonical order",
                    )
