"""DET002 — module-level RNG use outside ``repro/utils/rng.py``.

Every stochastic component in the repo draws through
:mod:`repro.utils.rng` — either a labelled ``make_rng`` stream or the
counter-split :class:`~repro.utils.rng.WillingnessSource` — so adding a
consumer of randomness never perturbs existing draws, and shards can draw
without coordination.  A direct ``random.random()`` (or any
``numpy.random.*`` call) bypasses both disciplines: it reads mutable
global state seeded by nobody, so results change run to run and executor
to executor.  DET002 flags every call on the ``random`` module object,
every ``from random import shuffle``-style re-export, and every
``numpy.random`` access — anywhere except the rng module itself.
``random.Random(seed)`` with an explicit seed is the one allowed
construction (it is how ``make_rng`` exists at all).
"""

import ast

from tools.reprolint.core import Rule

__all__ = ["UnseededRandomRule"]


def _alias_maps(tree):
    """(module aliases, from-imported random names) for one module."""
    modules = {}      # local name -> dotted module path
    from_random = {}  # local name -> attribute of the random module
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module == "random":
                for alias in node.names:
                    from_random[alias.asname or alias.name] = alias.name
            elif node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        modules[alias.asname or "random"] = "numpy.random"
    return modules, from_random


def _dotted(node):
    """Render an attribute chain as ``a.b.c`` (None when not a pure chain)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class UnseededRandomRule(Rule):
    """Flag module-level ``random``/``numpy.random`` calls."""

    code = "DET002"
    title = (
        "module-level random/numpy.random call outside repro/utils/rng.py"
    )

    _HINT = (
        "; route randomness through repro.utils.rng "
        "(make_rng / derive_seed / WillingnessSource)"
    )

    def check_module(self, module, ctx):
        """Scan one module (the rng module itself is exempt)."""
        if module.module_suffix_matches(ctx.config.rng_module):
            return
        modules, from_random = _alias_maps(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                origin = from_random.get(func.id)
                if origin is None:
                    continue
                if origin == "Random" and node.args:
                    continue  # explicitly seeded instance
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"call to random.{origin} imported as {func.id!r} uses "
                    f"the shared module RNG{self._HINT}",
                )
                continue
            dotted = _dotted(func)
            if dotted is None or "." not in dotted:
                continue
            head, _, rest = dotted.partition(".")
            resolved = modules.get(head)
            if resolved is None:
                continue
            full = f"{resolved}.{rest}"
            if full.startswith("numpy.random."):
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"numpy.random call ({dotted}) mutates/reads numpy's "
                    f"global RNG state{self._HINT}",
                )
            elif full.startswith("random."):
                attr = full[len("random."):]
                if attr == "Random" and node.args:
                    continue  # explicitly seeded instance
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"call to {dotted} uses the shared module RNG"
                    f"{self._HINT}",
                )
