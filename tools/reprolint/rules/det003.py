"""DET003 — wall-clock reads on determinism-critical paths.

Byte-identical timelines are the repo's core verification artifact: the
same graph, seed and decision cadence must produce the same digest on
every executor.  A ``time.time()`` (or ``perf_counter``, ``datetime.now``,
…) that flows into a digest, a timeline value or a wire payload breaks
that silently — the run *looks* fine and diverges only under diff.

Measurement is still legitimate: counters, tracer spans and
``SuperstepReport`` timing fields are documented measurement-only.  So the
rule allows wall-clock in two places: anywhere under ``repro/obs/`` (the
observability layer exists to measure), and the functions explicitly
declared in :data:`~tools.reprolint.config.LintConfig.wallclock_allowlist`
with a written justification.  The allowlist is cross-checked in
:meth:`WallClockRule.finalize`: an entry whose function no longer reads
the clock is itself a finding, so the list can only shrink with the code.
"""

import ast

from tools.reprolint.core import Rule

__all__ = ["WallClockRule"]

#: Functions of the ``time`` module that read a clock.
_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)
#: Classmethods of ``datetime.datetime``/``date`` that read a clock.
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


def _clock_aliases(tree):
    """(module aliases, names bound to clock functions) for one module."""
    modules = {}  # local name -> "time" | "datetime"
    names = {}    # local name -> rendered clock source, e.g. "time.time"
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in ("time", "datetime"):
                    modules[alias.asname or alias.name] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _TIME_FUNCS:
                        names[alias.asname or alias.name] = (
                            f"time.{alias.name}"
                        )
            elif node.module == "datetime":
                for alias in node.names:
                    if alias.name in ("datetime", "date"):
                        modules[alias.asname or alias.name] = "datetime"
    return modules, names


class WallClockRule(Rule):
    """Flag undeclared wall-clock reads in determinism-critical modules."""

    code = "DET003"
    title = (
        "wall-clock read outside repro/obs without a declared "
        "measurement-only allowlist entry"
    )

    def check_module(self, module, ctx):
        """Scan one det-critical module for clock calls."""
        config = ctx.config
        if not module.in_any(config.det_critical):
            return
        if module.in_any(config.wallclock_exempt):
            return
        allowed = frozenset()
        allow_key = None
        for suffix, qualnames in config.wallclock_allowlist.items():
            if module.module_suffix_matches(suffix):
                allowed, allow_key = qualnames, suffix
                break
        modules, names = _clock_aliases(module.tree)
        if not modules and not names:
            return
        hits = ctx.scratch.setdefault(self.code, set())

        def clock_source(call):
            """Rendered clock name when ``call`` reads one, else None."""
            func = call.func
            if isinstance(func, ast.Name):
                return names.get(func.id)
            if not isinstance(func, ast.Attribute):
                return None
            base = func.value
            # time.<func>() / datetime.now() on an imported-class alias.
            if isinstance(base, ast.Name):
                origin = modules.get(base.id)
                if origin == "time" and func.attr in _TIME_FUNCS:
                    return f"time.{func.attr}"
                if origin == "datetime" and func.attr in _DATETIME_FUNCS:
                    return f"datetime.{func.attr}"
            # datetime.datetime.now() via the module alias.
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and modules.get(base.value.id) == "datetime"
                and base.attr in ("datetime", "date")
                and func.attr in _DATETIME_FUNCS
            ):
                return f"datetime.{base.attr}.{func.attr}"
            return None

        def visit(node, stack):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                stack = stack + [node.name]
            if isinstance(node, ast.Call):
                source = clock_source(node)
                if source is not None:
                    qualname = ".".join(
                        part for part in stack if part is not None
                    )
                    if qualname in allowed:
                        hits.add((allow_key, qualname))
                    else:
                        where = (
                            f"in {qualname}" if qualname else "at module level"
                        )
                        yield self.finding(
                            module, node.lineno, node.col_offset,
                            f"wall-clock read ({source}) {where}; timing "
                            "belongs in repro/obs or a declared "
                            "measurement-only allowlist entry "
                            "(tools/reprolint/config.py)",
                        )
            for child in ast.iter_child_nodes(node):
                yield from visit(child, stack)

        yield from visit(module.tree, [])

    def finalize(self, ctx):
        """Report allowlist entries whose function no longer reads a clock."""
        hits = ctx.scratch.get(self.code, set())
        for suffix, qualnames in ctx.config.wallclock_allowlist.items():
            module = ctx.find_module(suffix)
            if module is None:
                continue  # file not part of this run's path set
            for qualname in sorted(qualnames):
                if (suffix, qualname) not in hits:
                    yield self.finding(
                        module, 1, 0,
                        f"stale wall-clock allowlist entry: {qualname} in "
                        f"{suffix} no longer reads the clock; remove it "
                        "from tools/reprolint/config.py",
                    )
