"""KER001 — batched kernels must stay vectorised.

``compute_batch`` exists for exactly one reason: to replace the
per-vertex Python reference loop with array operations.  A Python
``for``/``while`` or a comprehension inside a kernel silently reverts to
interpreter-speed per-vertex work while still *reporting* as the fast
path (``kernel.batched_blocks`` keeps counting) — the worst failure
mode, because the benchmarks' scalar leg no longer measures the thing
the batched leg avoids.  The honest alternatives are both loop-free:
vectorise with numpy, or **decline** (``return None``) and let the
dispatcher run the scalar reference loop, which is allowed to iterate.

KER001 flags every loop or comprehension node lexically inside a
function named ``compute_batch`` (method or free function) within the
kernel packages.  Nested helper ``def``/``lambda`` bodies are still
flagged — hiding the loop one frame down does not vectorise it.  A
genuinely-bounded loop (e.g. over a handful of label classes, not block
rows) can be suppressed with an inline pragma::

    for bucket in buckets:  # reprolint: allow-KER001 loop over <=3 buckets, not rows
"""

import ast

from tools.reprolint.core import Rule

__all__ = ["BatchedKernelLoopRule"]

#: Loop statements and the expression forms that desugar to loops.
_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)

_LOOP_LABEL = {
    ast.For: "for loop",
    ast.AsyncFor: "async for loop",
    ast.While: "while loop",
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
    ast.GeneratorExp: "generator expression",
}


class BatchedKernelLoopRule(Rule):
    """Flag per-vertex Python loops inside ``compute_batch`` kernels."""

    code = "KER001"
    title = (
        "Python loop inside a compute_batch kernel — vectorise it or "
        "decline to the scalar path"
    )

    def check_module(self, module, ctx):
        """Scan every ``compute_batch`` definition in kernel packages."""
        config = ctx.config
        if not module.in_any(config.kernel_paths):
            return
        for node in ast.walk(module.tree):
            if (
                not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                or node.name != config.kernel_method
            ):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, _LOOP_NODES):
                    label = _LOOP_LABEL[type(inner)]
                    yield self.finding(
                        module, inner.lineno, inner.col_offset,
                        f"{label} inside {config.kernel_method}(); the "
                        "batched kernel must use array operations — "
                        "vectorise this, or return None and let the "
                        "scalar reference loop handle the block",
                    )
