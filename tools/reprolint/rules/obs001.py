"""OBS001 — span/metric name literals must be in the checked-in registry.

``docs/observability.md`` documents every span and metric name the system
emits.  Nothing ties that table to the code: a renamed span or a new
counter silently de-syncs the docs, and downstream trace tooling keyed on
names breaks without a test failing.  The fix is a checked-in registry —
``repro/obs/names.py`` declares ``SPAN_NAMES``, ``METRIC_NAMES`` and
``METRIC_PREFIXES`` as frozensets of string literals — and this rule
closes the loop in both directions:

* every **literal** first argument to ``span(...)``/``record(...)`` must
  be a registered span name, and to ``counter``/``gauge``/``histogram``
  a registered metric name (or extend a registered prefix, for the
  ``CounterGroup`` families); ``group(...)`` literals must be registered
  prefixes;
* a registry entry no name in the tree uses is flagged as stale.

Dynamic names (f-strings, variables) are skipped — the registry governs
the static vocabulary, and the one dynamic producer (``CounterGroup``)
derives from a registered prefix by construction.
"""

import ast

from tools.reprolint.core import Rule

__all__ = ["ObservabilityNamesRule"]

_SPAN_METHODS = frozenset({"span", "record"})
_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})
_REGISTRY_SETS = ("SPAN_NAMES", "METRIC_NAMES", "METRIC_PREFIXES")


def _literal_strings(node):
    """String constants inside a ``frozenset({...})`` / set / tuple literal."""
    if isinstance(node, ast.Call) and node.args:
        node = node.args[0]
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        return {
            elt.value
            for elt in node.elts
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
        }
    return set()


def _parse_registry(tree):
    """{set name: (names, lineno)} for the three registry frozensets."""
    registry = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id in _REGISTRY_SETS:
                registry[target.id] = (
                    _literal_strings(node.value), node.lineno
                )
    return registry


def _receiver_mentions_metrics(func):
    """True when the call receiver looks like a metrics registry.

    ``group`` is the one method name shared with unrelated stdlib objects
    (``re.Match.group``), so its usages only count when the receiver's
    identifier mentions metrics.
    """
    base = func.value
    name = None
    if isinstance(base, ast.Name):
        name = base.id
    elif isinstance(base, ast.Attribute):
        name = base.attr
    return name is not None and "metric" in name.lower()


class ObservabilityNamesRule(Rule):
    """Tie span/metric name literals to ``repro/obs/names.py``."""

    code = "OBS001"
    title = (
        "span/metric name literal missing from the repro/obs/names.py "
        "registry (or a registry entry nothing uses)"
    )

    def check_module(self, module, ctx):
        """Collect registry contents and literal-name usages into scratch."""
        scratch = ctx.scratch.setdefault(
            self.code, {"registry": None, "uses": []}
        )
        if module.module_suffix_matches(ctx.config.obs_registry_suffix):
            scratch["registry"] = (module, _parse_registry(module.tree))
            return ()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in _SPAN_METHODS:
                kind = "span"
            elif func.attr in _METRIC_METHODS:
                kind = "metric"
            elif func.attr == "group" and _receiver_mentions_metrics(func):
                kind = "prefix"
            else:
                continue
            arg = node.args[0]
            if not (
                isinstance(arg, ast.Constant) and isinstance(arg.value, str)
            ):
                continue  # dynamic name: out of the registry's scope
            scratch["uses"].append(
                (module, kind, arg.value, node.lineno, node.col_offset)
            )
        return ()

    def finalize(self, ctx):
        """Check collected usages against the registry, both directions."""
        scratch = ctx.scratch.get(
            self.code, {"registry": None, "uses": []}
        )
        uses = scratch["uses"]
        if scratch["registry"] is None:
            if uses:
                module, _, _, line, col = uses[0]
                yield self.finding(
                    module, line, col,
                    "observability name literals found but no "
                    f"{ctx.config.obs_registry_suffix} registry module was "
                    "scanned",
                )
            return
        registry_module, registry = scratch["registry"]
        spans, _ = registry.get("SPAN_NAMES", (set(), 1))
        metrics, _ = registry.get("METRIC_NAMES", (set(), 1))
        prefixes, _ = registry.get("METRIC_PREFIXES", (set(), 1))
        used = {"span": set(), "metric": set(), "prefix": set()}

        for module, kind, value, line, col in uses:
            if kind == "span":
                if value in spans:
                    used["span"].add(value)
                    continue
                pool = "SPAN_NAMES"
            elif kind == "metric":
                if value in metrics:
                    used["metric"].add(value)
                    continue
                prefix = next(
                    (p for p in prefixes if value.startswith(p + ".")),
                    None,
                )
                if prefix is not None:
                    used["prefix"].add(prefix)
                    continue
                pool = "METRIC_NAMES"
            else:
                if value in prefixes:
                    used["prefix"].add(value)
                    continue
                pool = "METRIC_PREFIXES"
            yield self.finding(
                module, line, col,
                f"{kind} name {value!r} is not in {pool} "
                f"({ctx.config.obs_registry_suffix}); register it so "
                "docs/observability.md stays honest",
            )

        for pool_name, names, used_key in (
            ("SPAN_NAMES", spans, "span"),
            ("METRIC_NAMES", metrics, "metric"),
            ("METRIC_PREFIXES", prefixes, "prefix"),
        ):
            line = registry.get(pool_name, (set(), 1))[1]
            for name in sorted(names - used[used_key]):
                yield self.finding(
                    registry_module, line, 0,
                    f"registry entry {name!r} in {pool_name} is used "
                    "nowhere in the scanned tree; remove it or emit it",
                )
