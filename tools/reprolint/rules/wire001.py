"""WIRE001 — the shard-struct / wire-codec contract.

``cluster/shard.py`` defines the dataclasses that cross the wire
(``ShardTask``/``ShardPatch``/``ShardDelta``); ``cluster/wire.py`` encodes
them with a tagged binary codec.  The two files agree only by discipline:
adding a field to a struct without teaching the codec drops it silently on
the remote side (the encoder just never reads it), and referencing a type
the codec has no tag for falls back to pickle — fine for top-level
classes, a runtime error for anything else.

WIRE001 makes the discipline a check, cross-module and purely static:

* every wire struct must appear as a key in the codec's dispatch table
  (``_ENCODERS``);
* its encoder function must read **every** declared field, and
  ``_decode`` must pass every field to the reconstructing constructor
  call — a field missing on either side is a finding anchored at the
  struct definition;
* every non-builtin type named in a struct field annotation must either
  have its own codec tag or be pickle-fallback-safe, i.e. a *top-level*
  class in the module it is imported from.

The whole rule runs in :meth:`WireContractRule.finalize` because it needs
both files parsed; fixture trees exercise it with miniature shard/wire
pairs in the same layout.
"""

import ast

from tools.reprolint.core import Rule

__all__ = ["WireContractRule"]

#: Annotation names that never need a codec tag.
_BUILTIN_TYPES = frozenset(
    {
        "int", "float", "str", "bytes", "bool", "None", "object",
        "tuple", "list", "dict", "set", "frozenset",
        "Tuple", "List", "Dict", "Set", "FrozenSet", "Optional", "Union",
        "Any", "Mapping", "Sequence", "Iterable", "Callable",
    }
)


def _annotation_names(node):
    """Every bare name referenced inside a field annotation."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id


def _class_fields(class_node):
    """Declared dataclass fields: annotated names in the class body."""
    fields = {}
    for stmt in class_node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            fields[stmt.target.id] = stmt.annotation
    return fields


def _top_level_classes(tree):
    """Names of classes defined at module top level (pickle-safe)."""
    return {
        node.name
        for node in tree.body
        if isinstance(node, ast.ClassDef)
    }


def _import_origins(tree):
    """Local name -> dotted source module, from ``from X import Y`` forms."""
    origins = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                origins[alias.asname or alias.name] = node.module
    return origins


def _assign_targets(node):
    """Name targets of a plain or annotated assignment (else empty)."""
    if isinstance(node, ast.Assign):
        return [t for t in node.targets if isinstance(t, ast.Name)]
    if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        return [node.target]
    return []


def _find_dispatch(tree, dispatch_name):
    """The ``_ENCODERS`` dict literal: {struct name: encoder func name}."""
    for node in ast.walk(tree):
        if node.__class__ not in (ast.Assign, ast.AnnAssign):
            continue
        if not any(t.id == dispatch_name for t in _assign_targets(node)):
            continue
        if node.value is None:
            continue  # a bare annotation declares nothing
        if not isinstance(node.value, ast.Dict):
            return node, {}
        table = {}
        for key, value in zip(node.value.keys, node.value.values):
            if isinstance(key, ast.Name) and isinstance(value, ast.Name):
                table[key.id] = value.id
        return node, table
    return None, {}


class WireContractRule(Rule):
    """Cross-check the wire structs against their codec."""

    code = "WIRE001"
    title = (
        "wire struct field or type not covered by the cluster/wire.py codec"
    )

    def finalize(self, ctx):
        """Pair each shard module with its codec sibling and cross-check."""
        config = ctx.config
        for shard in ctx.modules:
            if not shard.module_suffix_matches(config.wire_shard_suffix):
                continue
            codec = self._codec_sibling(shard, ctx)
            if codec is None:
                yield self.finding(
                    shard, 1, 0,
                    f"wire structs defined here but no codec module "
                    f"({config.wire_codec_name}) found next to it",
                )
                continue
            yield from self._check_pair(shard, codec, ctx)

    def _codec_sibling(self, shard, ctx):
        """The wire codec module living in the same directory as ``shard``."""
        expected = shard.path.resolve().with_name(ctx.config.wire_codec_name)
        for module in ctx.modules:
            if module.path.resolve() == expected:
                return module
        return None

    def _check_pair(self, shard, codec, ctx):
        config = ctx.config
        classes = {
            node.name: node
            for node in ast.walk(shard.tree)
            if isinstance(node, ast.ClassDef)
        }
        dispatch_node, dispatch = _find_dispatch(
            codec.tree, config.wire_dispatch
        )
        if dispatch_node is None:
            yield self.finding(
                codec, 1, 0,
                f"codec has no {config.wire_dispatch} dispatch table; "
                "WIRE001 cannot verify struct coverage",
            )
            return
        funcs = {
            node.name: node
            for node in ast.walk(codec.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        decode_kwargs = self._decode_constructions(codec.tree)

        for struct_name in config.wire_structs:
            struct = classes.get(struct_name)
            if struct is None:
                yield self.finding(
                    shard, 1, 0,
                    f"declared wire struct {struct_name} not defined in "
                    f"{shard.display}",
                )
                continue
            fields = _class_fields(struct)
            encoder_name = dispatch.get(struct_name)
            if encoder_name is None:
                yield self.finding(
                    codec, dispatch_node.lineno, dispatch_node.col_offset,
                    f"{struct_name} has no entry in {config.wire_dispatch}; "
                    "instances would take the pickle fallback on every send",
                )
                continue
            encoder = funcs.get(encoder_name)
            read = (
                self._attrs_read(encoder) if encoder is not None else set()
            )
            passed = decode_kwargs.get(struct_name, set())
            for field_name in fields:
                if field_name not in read:
                    yield self.finding(
                        shard, struct.lineno, struct.col_offset,
                        f"{struct_name}.{field_name} is never read by "
                        f"{encoder_name}(); the field would be dropped on "
                        "encode",
                    )
                if field_name not in passed:
                    yield self.finding(
                        shard, struct.lineno, struct.col_offset,
                        f"{struct_name}.{field_name} is not passed to the "
                        f"{struct_name}(...) reconstruction in the codec's "
                        "decode path",
                    )
            yield from self._check_field_types(
                shard, struct, fields, dispatch, ctx
            )

    @staticmethod
    def _attrs_read(func):
        """Every ``<x>.attr`` attribute name read inside ``func``."""
        return {
            node.attr
            for node in ast.walk(func)
            if isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
        }

    @staticmethod
    def _decode_constructions(tree):
        """Struct name -> keyword names of ``Struct(field=...)`` calls."""
        constructions = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Name):
                continue
            kwargs = {
                kw.arg for kw in node.keywords if kw.arg is not None
            }
            if kwargs:
                constructions.setdefault(node.func.id, set()).update(kwargs)
        return constructions

    def _check_field_types(self, shard, struct, fields, dispatch, ctx):
        """Non-builtin annotation types need a tag or pickle-fallback safety."""
        origins = _import_origins(shard.tree)
        local_classes = _top_level_classes(shard.tree)
        seen = set()
        for field_name, annotation in fields.items():
            for name in _annotation_names(annotation):
                if name in _BUILTIN_TYPES or name in seen:
                    continue
                seen.add(name)
                if name in dispatch or name in local_classes:
                    continue
                origin = origins.get(name)
                if origin is None:
                    continue  # builtin-namespace or locally aliased: no call
                defining = ctx.find_module(
                    origin.replace(".", "/") + ".py"
                )
                if defining is None:
                    continue  # outside the scanned tree; cannot verify
                if name not in _top_level_classes(defining.tree):
                    yield self.finding(
                        shard, struct.lineno, struct.col_offset,
                        f"{struct.name}.{field_name} references {name} "
                        f"(from {origin}), which has no codec tag and is "
                        "not a top-level class there — the pickle fallback "
                        "would fail on it",
                    )
