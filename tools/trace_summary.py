"""Summarise a repro trace file: per-phase wall-clock, lanes, top spans.

Reads either exporter format produced by ``repro … --trace`` /
:mod:`repro.obs.export` — JSONL span rows (``*.jsonl``) or Chrome
trace-event JSON — and prints three tables: wall-clock by phase name,
wall-clock by lane (coordinator / ``shard-<id>`` / wire), and the top-N
longest individual spans.  Stdlib only, so it runs anywhere the trace
file does::

    python tools/trace_summary.py out.json --top 15

Durations print in milliseconds; the tool never needs the repro package
itself (CI's doc-lint and the unit suite keep it honest).
"""

import argparse
import json
import sys

__all__ = ["format_summary", "load_spans", "main", "phase_totals"]


def _spans_from_chrome(document):
    """Span dicts from a Chrome trace-event document (durations seconds)."""
    events = document.get("traceEvents", [])
    lane_names = {
        event.get("tid"): event.get("args", {}).get("name")
        for event in events
        if event.get("ph") == "M" and event.get("name") == "thread_name"
    }
    spans = []
    for event in events:
        if event.get("ph") != "X":
            continue
        tid = event.get("tid")
        spans.append(
            {
                "name": event.get("name", "?"),
                "lane": lane_names.get(tid) or f"tid-{tid}",
                "start": event.get("ts", 0.0) / 1e6,
                "dur": event.get("dur", 0.0) / 1e6,
                "args": event.get("args") or None,
            }
        )
    return spans


def load_spans(path):
    """Load span dicts from a JSONL or Chrome trace file at ``path``.

    Every span comes back as ``{"name", "lane", "start", "dur", "args"}``
    with times in seconds, whichever format was on disk.
    """
    with open(path, encoding="utf-8") as fh:
        head = fh.read(1)
        fh.seek(0)
        if head == "{" and not str(path).endswith(".jsonl"):
            return _spans_from_chrome(json.load(fh))
        spans = []
        for line in fh:
            line = line.strip()
            if line:
                row = json.loads(line)
                row.setdefault("args", None)
                spans.append(row)
        return spans


def _table(headers, rows):
    """Plain aligned text table (left column left-aligned, rest right)."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []

    def fmt(cells):
        first = cells[0].ljust(widths[0])
        rest = [cell.rjust(widths[i + 1]) for i, cell in enumerate(cells[1:])]
        return "  ".join([first, *rest]).rstrip()

    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _ms(seconds):
    return f"{1000.0 * seconds:.3f}"


def _aggregate(spans, key):
    """``{key_value: [count, total_seconds, max_seconds]}`` over spans."""
    table = {}
    for span in spans:
        entry = table.setdefault(span[key], [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span["dur"]
        entry[2] = max(entry[2], span["dur"])
    return table


def phase_totals(spans):
    """``{phase_name: total_seconds}`` — the summary's per-phase column."""
    return {
        name: total for name, (_, total, _) in _aggregate(spans, "name").items()
    }


def format_summary(spans, top=10):
    """The full text summary for a list of span dicts."""
    if not spans:
        return "(no spans in trace)"
    sections = []
    by_phase = sorted(
        _aggregate(spans, "name").items(), key=lambda kv: -kv[1][1]
    )
    sections.append("wall-clock by phase:")
    sections.append(
        _table(
            ["phase", "count", "total_ms", "mean_ms", "max_ms"],
            [
                [name, count, _ms(total), _ms(total / count), _ms(peak)]
                for name, (count, total, peak) in by_phase
            ],
        )
    )
    by_lane = sorted(
        _aggregate(spans, "lane").items(), key=lambda kv: -kv[1][1]
    )
    sections.append("")
    sections.append("wall-clock by lane:")
    sections.append(
        _table(
            ["lane", "spans", "total_ms"],
            [
                [lane, count, _ms(total)]
                for lane, (count, total, _) in by_lane
            ],
        )
    )
    longest = sorted(spans, key=lambda s: -s["dur"])[:top]
    sections.append("")
    sections.append(f"top {len(longest)} spans:")
    sections.append(
        _table(
            ["name", "lane", "dur_ms", "args"],
            [
                [
                    span["name"],
                    span["lane"],
                    _ms(span["dur"]),
                    json.dumps(span["args"]) if span.get("args") else "",
                ]
                for span in longest
            ],
        )
    )
    return "\n".join(sections)


def main(argv=None, out=None):
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    parser = argparse.ArgumentParser(
        description="Summarise a repro trace file (JSONL span rows or "
        "Chrome trace-event JSON)"
    )
    parser.add_argument("trace", help="trace file written by --trace")
    parser.add_argument("--top", type=int, default=10,
                        help="how many longest spans to list (default 10)")
    args = parser.parse_args(argv)
    try:
        spans = load_spans(args.trace)
    except (OSError, ValueError) as exc:
        out.write(f"cannot read trace {args.trace!r}: {exc}\n")
        return 2
    out.write(format_summary(spans, top=args.top) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
